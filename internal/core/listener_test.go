package core

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// tempNetError mimics an EMFILE-class transient accept failure.
type tempNetError struct{}

func (tempNetError) Error() string   { return "accept: too many open files" }
func (tempNetError) Timeout() bool   { return false }
func (tempNetError) Temporary() bool { return true }

// scriptedListener fails Accept a configured number of times, then
// blocks until closed.
type scriptedListener struct {
	mu     sync.Mutex
	fails  int
	closed chan struct{}
	once   sync.Once
}

func newScriptedListener(fails int) *scriptedListener {
	return &scriptedListener{fails: fails, closed: make(chan struct{})}
}

func (f *scriptedListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	if f.fails > 0 {
		f.fails--
		f.mu.Unlock()
		return nil, tempNetError{}
	}
	f.mu.Unlock()
	<-f.closed
	return nil, errors.New("use of closed listener")
}

func (f *scriptedListener) Close() error {
	f.once.Do(func() { close(f.closed) })
	return nil
}

func (f *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

// TestAcceptLoopBacksOffOnTemporaryErrors: EMFILE-class Accept errors
// are retried with backoff — the listener neither spins nor dies — and
// each retry is counted.
func TestAcceptLoopBacksOffOnTemporaryErrors(t *testing.T) {
	const fails = 5
	inner := newScriptedListener(fails)
	l := NewListener(inner, &Config{
		Retry:     RetryPolicy{Base: time.Millisecond, Cap: 8 * time.Millisecond},
		RetrySeed: 42,
	})
	defer l.Close()

	waitFor(t, 10*time.Second, func() bool {
		return l.AcceptRetries() == fails
	}, "accept loop did not retry through the temporary errors")

	// The loop must have survived the episode: no terminal error posted,
	// listener still open.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-l.errs:
		t.Fatalf("temporary errors killed the listener: %v", err)
	default:
	}
	if l.closed.Load() {
		t.Fatal("listener closed itself on temporary errors")
	}
	if n := l.AcceptRetries(); n != fails {
		t.Fatalf("accept_retries = %d, want exactly %d", n, fails)
	}
}

// TestAcceptLoopDiesOnPermanentError: a non-temporary Accept error
// still ends the listener and surfaces through Accept.
func TestAcceptLoopDiesOnPermanentError(t *testing.T) {
	inner := newScriptedListener(0)
	l := NewListener(inner, &Config{})
	inner.Close() // Accept now returns a permanent error
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept returned nil after permanent error")
	}
	if !l.closed.Load() {
		t.Fatal("listener survived a permanent Accept error")
	}
}

// TestPickConnIDRetriesOnCollision: minting skips zero and every id the
// session table (or an in-flight handshake) already holds, instead of
// silently hijacking a live session.
func TestPickConnIDRetriesOnCollision(t *testing.T) {
	taken := map[uint32]bool{1: true, 2: true, 3: true}
	seq := []uint32{1, 2, 0, 3, 7}
	draws := 0
	id := pickConnID(
		func(id uint32) bool { return taken[id] },
		func() uint32 { d := seq[draws]; draws++; return d },
	)
	if id != 7 {
		t.Fatalf("pickConnID = %d, want 7", id)
	}
	if draws != len(seq) {
		t.Fatalf("draws = %d, want %d (every collision retried)", draws, len(seq))
	}
}

// TestReserveConnIDLifecycle: reserved ids are unique, excluded from
// later mints, and freed by release — so a failed handshake does not
// leak id space.
func TestReserveConnIDLifecycle(t *testing.T) {
	inner := newScriptedListener(0)
	l := NewListener(inner, &Config{})
	defer l.Close()

	seen := make(map[uint32]bool)
	for i := 0; i < 64; i++ {
		id := l.reserveConnID()
		if id == 0 {
			t.Fatal("reserved the zero conn id")
		}
		if seen[id] {
			t.Fatalf("conn id %d reserved twice", id)
		}
		seen[id] = true
	}
	if n := l.table.reservedLen(); n != 64 {
		t.Fatalf("reserved set holds %d ids, want 64", n)
	}
	for id := range seen {
		l.releaseConnID(id)
	}
	if n := l.table.reservedLen(); n != 0 {
		t.Fatalf("release leaked %d reservations", n)
	}
}

// feedListener hands out scripted conns, exposing the batch fast path
// the accept loop uses (AcceptBatch) alongside blocking Accept.
type feedListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newFeedListener() *feedListener {
	return &feedListener{
		conns:  make(chan net.Conn, 256),
		closed: make(chan struct{}),
	}
}

func (f *feedListener) Accept() (net.Conn, error) {
	select {
	case c := <-f.conns:
		return c, nil
	case <-f.closed:
		return nil, errors.New("use of closed listener")
	}
}

func (f *feedListener) AcceptBatch(dst []net.Conn) int {
	n := 0
	for n < len(dst) {
		select {
		case c := <-f.conns:
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

func (f *feedListener) Close() error {
	f.once.Do(func() { close(f.closed) })
	return nil
}

func (f *feedListener) Addr() net.Addr { return &net.TCPAddr{} }

// deadConn returns a net.Pipe end whose peer is already closed, so a
// TLS handshake on it fails immediately.
func deadConn() net.Conn {
	a, b := net.Pipe()
	b.Close()
	return a
}

// TestAcceptBatchingPreservesAccountingInvariant pins the ledger
// equation conns_seen == handshakes_started + rejected_pre_tls across
// the batched accept path. Every connection that passes admitConn must
// end up in exactly one of the two buckets — including the ones shed at
// a full handshake queue, which never reach beginHandshake. This test
// fails if the counters move relative to the batching/queueing.
func TestAcceptBatchingPreservesAccountingInvariant(t *testing.T) {
	inner := newFeedListener()
	acct := NewAccounting(ServerBudgets{MaxSessions: 1000})
	l := NewListener(inner, &Config{
		Accounting:    acct,
		AcceptWorkers: 1,
		AcceptBacklog: 1,
	})
	defer l.Close()

	// Occupy the single worker with a handshake that cannot progress: an
	// open pipe with a silent peer blocks the server's first read.
	blockerA, blockerB := net.Pipe()
	inner.conns <- blockerA
	waitFor(t, 10*time.Second, func() bool {
		return acct.Stats().HandshakesStarted == 1
	}, "worker never picked up the blocking conn")

	// Feed a burst through the batch path: one fits the queue (cap 1),
	// the rest must be shed pre-TLS at the full queue.
	const burst = 10
	for i := 0; i < burst; i++ {
		inner.conns <- deadConn()
	}
	waitFor(t, 10*time.Second, func() bool {
		return l.QueueDrops() == burst-1
	}, "full handshake queue did not shed the overflow")

	// Unblock the worker; it fails the blocker's handshake, then drains
	// the one queued conn (which also fails fast — its peer is closed).
	blockerB.Close()
	waitFor(t, 10*time.Second, func() bool {
		return acct.Stats().HandshakesStarted == 2
	}, "worker never drained the queued conn")

	waitFor(t, 10*time.Second, func() bool {
		st := acct.Stats()
		return st.ConnsSeen == st.HandshakesStarted+st.RejectedPreTLS
	}, "accounting invariant violated at quiescence")
	st := acct.Stats()
	if st.ConnsSeen != 1+burst {
		t.Fatalf("conns_seen = %d, want %d", st.ConnsSeen, 1+burst)
	}
	if st.HandshakesStarted != 2 {
		t.Fatalf("handshakes_started = %d, want 2 (blocker + one queued)", st.HandshakesStarted)
	}
	if st.RejectedPreTLS != burst-1 {
		t.Fatalf("rejected_pre_tls = %d, want %d (queue overflow)", st.RejectedPreTLS, burst-1)
	}
}

// TestAcceptInvariantHoldsThroughClose: conns in flight when the
// listener closes — queued but never handshaken — are still counted
// out, so the ledger balances no matter where Close cuts the pipeline.
func TestAcceptInvariantHoldsThroughClose(t *testing.T) {
	inner := newFeedListener()
	acct := NewAccounting(ServerBudgets{MaxSessions: 1000})
	l := NewListener(inner, &Config{
		Accounting:    acct,
		AcceptWorkers: 2,
		AcceptBacklog: 4,
	})
	for i := 0; i < 32; i++ {
		inner.conns <- deadConn()
	}
	// Let the accept loop ingest at least part of the burst, then close
	// mid-stream: whatever was admitted must still balance.
	waitFor(t, 10*time.Second, func() bool {
		return acct.Stats().ConnsSeen > 0
	}, "accept loop ingested nothing")
	l.Close()
	waitFor(t, 10*time.Second, func() bool {
		st := acct.Stats()
		return st.ConnsSeen == st.HandshakesStarted+st.RejectedPreTLS
	}, "accounting invariant violated after close drain")
}
