package core

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// tempNetError mimics an EMFILE-class transient accept failure.
type tempNetError struct{}

func (tempNetError) Error() string   { return "accept: too many open files" }
func (tempNetError) Timeout() bool   { return false }
func (tempNetError) Temporary() bool { return true }

// scriptedListener fails Accept a configured number of times, then
// blocks until closed.
type scriptedListener struct {
	mu     sync.Mutex
	fails  int
	closed chan struct{}
	once   sync.Once
}

func newScriptedListener(fails int) *scriptedListener {
	return &scriptedListener{fails: fails, closed: make(chan struct{})}
}

func (f *scriptedListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	if f.fails > 0 {
		f.fails--
		f.mu.Unlock()
		return nil, tempNetError{}
	}
	f.mu.Unlock()
	<-f.closed
	return nil, errors.New("use of closed listener")
}

func (f *scriptedListener) Close() error {
	f.once.Do(func() { close(f.closed) })
	return nil
}

func (f *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

// TestAcceptLoopBacksOffOnTemporaryErrors: EMFILE-class Accept errors
// are retried with backoff — the listener neither spins nor dies — and
// each retry is counted.
func TestAcceptLoopBacksOffOnTemporaryErrors(t *testing.T) {
	const fails = 5
	inner := newScriptedListener(fails)
	l := NewListener(inner, &Config{
		Retry:     RetryPolicy{Base: time.Millisecond, Cap: 8 * time.Millisecond},
		RetrySeed: 42,
	})
	defer l.Close()

	waitFor(t, 10*time.Second, func() bool {
		return l.AcceptRetries() == fails
	}, "accept loop did not retry through the temporary errors")

	// The loop must have survived the episode: no terminal error posted,
	// listener still open.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-l.errs:
		t.Fatalf("temporary errors killed the listener: %v", err)
	default:
	}
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		t.Fatal("listener closed itself on temporary errors")
	}
	if n := l.AcceptRetries(); n != fails {
		t.Fatalf("accept_retries = %d, want exactly %d", n, fails)
	}
}

// TestAcceptLoopDiesOnPermanentError: a non-temporary Accept error
// still ends the listener and surfaces through Accept.
func TestAcceptLoopDiesOnPermanentError(t *testing.T) {
	inner := newScriptedListener(0)
	l := NewListener(inner, &Config{})
	inner.Close() // Accept now returns a permanent error
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept returned nil after permanent error")
	}
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if !closed {
		t.Fatal("listener survived a permanent Accept error")
	}
}

// TestPickConnIDRetriesOnCollision: minting skips zero and every id the
// session table (or an in-flight handshake) already holds, instead of
// silently hijacking a live session.
func TestPickConnIDRetriesOnCollision(t *testing.T) {
	taken := map[uint32]bool{1: true, 2: true, 3: true}
	seq := []uint32{1, 2, 0, 3, 7}
	draws := 0
	id := pickConnID(
		func(id uint32) bool { return taken[id] },
		func() uint32 { d := seq[draws]; draws++; return d },
	)
	if id != 7 {
		t.Fatalf("pickConnID = %d, want 7", id)
	}
	if draws != len(seq) {
		t.Fatalf("draws = %d, want %d (every collision retried)", draws, len(seq))
	}
}

// TestReserveConnIDLifecycle: reserved ids are unique, excluded from
// later mints, and freed by release — so a failed handshake does not
// leak id space.
func TestReserveConnIDLifecycle(t *testing.T) {
	inner := newScriptedListener(0)
	l := NewListener(inner, &Config{})
	defer l.Close()

	seen := make(map[uint32]bool)
	for i := 0; i < 64; i++ {
		id := l.reserveConnID()
		if id == 0 {
			t.Fatal("reserved the zero conn id")
		}
		if seen[id] {
			t.Fatalf("conn id %d reserved twice", id)
		}
		seen[id] = true
	}
	l.mu.Lock()
	n := len(l.reserved)
	l.mu.Unlock()
	if n != 64 {
		t.Fatalf("reserved set holds %d ids, want 64", n)
	}
	for id := range seen {
		l.releaseConnID(id)
	}
	l.mu.Lock()
	n = len(l.reserved)
	l.mu.Unlock()
	if n != 0 {
		t.Fatalf("release leaked %d reservations", n)
	}
}
