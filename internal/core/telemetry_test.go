package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// TestTraceSampleRateSelection: TraceSampleRate <= 1 traces every
// session; rate N traces exactly the sessions whose process-wide
// sequence number is divisible by N. The flight recorder runs on all of
// them regardless — sampling thins the firehose, not the black box.
func TestTraceSampleRateSelection(t *testing.T) {
	for _, rate := range []int{0, 1} {
		s := newSession(RoleClient, &Config{TraceSampleRate: rate}, nil)
		if !s.traceSampled {
			t.Fatalf("rate %d: session not sampled", rate)
		}
		if s.flight == nil {
			t.Fatalf("rate %d: flight recorder missing", rate)
		}
		s.teardown(nil)
	}

	const rate = 4
	var sampled, total int
	for i := 0; i < 4*rate; i++ {
		s := newSession(RoleClient, &Config{TraceSampleRate: rate}, nil)
		want := s.seq%uint32(rate) == 0
		if s.traceSampled != want {
			t.Fatalf("seq %d rate %d: sampled = %v, want %v", s.seq, rate, s.traceSampled, want)
		}
		if s.flight == nil {
			t.Fatalf("seq %d: flight recorder must run on unsampled sessions too", s.seq)
		}
		if s.traceSampled {
			sampled++
		}
		total++
		s.teardown(nil)
	}
	if sampled != total/rate {
		t.Fatalf("sampled %d of %d sessions at rate %d, want %d", sampled, total, rate, total/rate)
	}
}

// TestSampledEmitReachesTracer: an unsampled session's events stay out
// of the tracer but still land in its flight recorder.
func TestSampledEmitReachesTracer(t *testing.T) {
	ring := telemetry.NewRingSink(64)
	tr := telemetry.NewTracer(telemetry.WithSink(ring))

	s := newSession(RoleClient, &Config{Tracer: tr}, nil)
	s.traceSampled = false // force the unsampled path deterministically
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "test"})
	if got := len(ring.Events()); got != 0 {
		t.Fatalf("unsampled session leaked %d events into the tracer", got)
	}
	if got := s.flight.Len(); got != 1 {
		t.Fatalf("flight recorder holds %d events, want 1", got)
	}
	s.traceSampled = true
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "test2"})
	if got := len(ring.Events()); got != 1 {
		t.Fatalf("sampled emit produced %d trace events, want 1", got)
	}
	s.teardown(nil)
}

// TestSessionDumpRoundTrip: SessionDump captures the ring on demand and
// its JSONL form parses back into the same events.
func TestSessionDumpRoundTrip(t *testing.T) {
	s := newSession(RoleServer, &Config{}, nil)
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "server"})
	s.emit(telemetry.Event{Kind: telemetry.EvStreamOpen, Stream: 2})
	s.emit(telemetry.Event{Kind: telemetry.EvRecordSent, Stream: 2, A: 1400})

	d := s.SessionDump("on-demand")
	if d.Seq != s.seq || d.Role != RoleServer || d.Reason != "on-demand" {
		t.Fatalf("dump header mismatch: %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("dump holds %d events, want 3", len(d.Events))
	}
	for _, ev := range d.Events {
		if ev.EP != "server" {
			t.Fatalf("event not stamped with role endpoint: %+v", ev)
		}
	}

	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	parsed, err := telemetry.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(parsed) != 3 || parsed[1].Kind != telemetry.EvStreamOpen || parsed[1].Stream != 2 {
		t.Fatalf("round trip mangled events: %+v", parsed)
	}
	s.teardown(nil)
}

// TestFlightRecorderDisabled: a negative FlightRecorderSize turns the
// recorder off entirely; dumps are empty and anomalies publish nothing.
func TestFlightRecorderDisabled(t *testing.T) {
	var dumps int
	cfg := &Config{
		FlightRecorderSize: -1,
		Callbacks:          Callbacks{FlightDump: func(SessionDump) { dumps++ }},
	}
	s := newSession(RoleClient, cfg, nil)
	if s.flight != nil {
		t.Fatal("flight recorder allocated despite negative size")
	}
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart})
	if d := s.SessionDump("check"); len(d.Events) != 0 || d.Dropped != 0 {
		t.Fatalf("disabled recorder produced a dump: %+v", d)
	}
	s.teardown(&StallError{Kind: "write-stall", Stream: 1})
	if dumps != 0 {
		t.Fatalf("disabled recorder fired %d dump callbacks", dumps)
	}
}

// TestFlightDumpOnAnomaly: an anomalous teardown publishes the flight
// recorder through the callback, with the triggering reason and the
// events leading up to the failure; an orderly close publishes nothing.
func TestFlightDumpOnAnomaly(t *testing.T) {
	var got []SessionDump
	cfg := &Config{Callbacks: Callbacks{FlightDump: func(d SessionDump) { got = append(got, d) }}}

	orderly := newSession(RoleClient, cfg, nil)
	orderly.teardown(nil)
	if len(got) != 0 {
		t.Fatalf("orderly close produced %d dumps", len(got))
	}

	anomalous := newSession(RoleServer, cfg, nil)
	anomalous.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "server"})
	anomalous.teardown(&StallError{Kind: "write-stall", Stream: 7})
	if len(got) != 1 {
		t.Fatalf("anomalous close produced %d dumps, want 1", len(got))
	}
	d := got[0]
	if !strings.Contains(d.Reason, "stalled") {
		t.Fatalf("dump reason %q does not carry the stall", d.Reason)
	}
	var sawClose bool
	for _, ev := range d.Events {
		if ev.Kind == telemetry.EvSessionClose {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatalf("dump missing the session:close event: %+v", d.Events)
	}
}

// TestFlightDumpDir: FlightDumpDir receives a parseable JSONL artifact
// named after the session on anomalous teardown.
func TestFlightDumpDir(t *testing.T) {
	dir := t.TempDir()
	s := newSession(RoleClient, &Config{FlightDumpDir: dir}, nil)
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "client"})
	seq := s.seq
	s.teardown(&OverloadError{Resource: "shed:idle", Limit: 4})

	matches, err := filepath.Glob(filepath.Join(dir, "flight-s*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dump artifacts = %v (err %v), want exactly one", matches, err)
	}
	if !strings.Contains(matches[0], "flight-s"+itoa(seq)) {
		t.Fatalf("artifact %q not named after session %d", matches[0], seq)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ParseJSONL(f)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("artifact is empty")
	}
}

// TestRollupOnTeardown: closing a session folds its counters into the
// aggregate sessions.* namespace and removes its session.<n>.* vars.
func TestRollupOnTeardown(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newSession(RoleClient, &Config{Metrics: reg}, nil)
	s.ctr.bytesSent.Add(4096)
	s.ctr.failovers.Add(2)

	if _, ok := reg.Snapshot()["sessions.live"]; !ok {
		t.Fatal("sessions.live not registered at open")
	}
	s.teardown(nil)

	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "session.") {
			t.Fatalf("per-session var %q survived teardown", name)
		}
	}
	snap := reg.Snapshot()
	checks := map[string]int64{
		"sessions.opened":     1,
		"sessions.closed":     1,
		"sessions.live":       0,
		"sessions.bytes_sent": 4096,
		"sessions.failovers":  2,
	}
	for name, want := range checks {
		got, ok := snap[name].(int64)
		if !ok || got != want {
			t.Fatalf("%s = %v, want %d", name, snap[name], want)
		}
	}
}

// itoa avoids strconv for one tiny test helper.
func itoa(n uint32) string {
	var buf [10]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			return string(buf[i:])
		}
	}
}
