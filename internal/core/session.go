// Package core implements the TCPLS session: one encrypted session
// multiplexed over one or more TCP connections.
//
// It is the paper's §2 design rendered in Go: the TLS 1.3 handshake
// doubles as the TCPLS handshake (transport parameters ride a ClientHello
// extension, the server's CONNID/cookies/addresses ride
// EncryptedExtensions — Figure 2); the TLS record layer doubles as a
// secure control channel (TCP options, acknowledgments, address
// advertisements, eBPF programs — §2.2/§3); datastreams with their own
// crypto contexts are multiplexed over the session's TCP connections
// (§2.3); and the session survives the failure or migration of any
// individual TCP connection (§2.1, §3.2).
package core

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/timingwheel"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Role distinguishes the two ends of a session.
type Role int

// Session roles.
const (
	RoleClient Role = iota
	RoleServer
)

// Errors.
var (
	ErrSessionClosed = errors.New("tcpls: session closed")
	ErrNoConnection  = errors.New("tcpls: no live TCP connection")
	ErrNoCookies     = errors.New("tcpls: no join cookies left")
	ErrJoinRejected  = errors.New("tcpls: join rejected")
	ErrUnknownStream = errors.New("tcpls: unknown stream")
	ErrNoAddresses   = errors.New("tcpls: no addresses to connect to")
	// ErrPathUnhealthy reports that the health monitor declared a path
	// dead (consecutive unanswered probes) and failed it over proactively,
	// before the transport's own read loop noticed anything.
	ErrPathUnhealthy = errors.New("tcpls: path failed health probes")
)

// Dialer opens transport connections: satisfied by tcpnet stacks and by
// adapters over net.Dialer, so TCPLS runs identically on the emulated
// network and on real sockets.
type Dialer interface {
	Dial(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (net.Conn, error)
}

// Introspector is the cross-layer window into a TCP connection
// (tcpnet.Conn implements it). Code must treat it as optional: kernel
// sockets don't provide it.
type Introspector interface {
	// CWndInfo returns (cwnd, bytesInFlight, mss).
	CWndInfo() (int, int, int)
	// SetUserTimeout applies RFC 5482 locally ("performs the required
	// setsockopt", §3.1).
	SetUserTimeout(d time.Duration)
}

// SchedulingMode selects how stream data maps onto TCP connections
// (§2.4: HOL-blocking avoidance and bandwidth aggregation are exclusive).
type SchedulingMode int

// Scheduling modes.
const (
	// ModeSinglePath sends every stream on its attached connection.
	// Streams on different connections cannot block each other (the
	// "HOL-avoidance" mode).
	ModeSinglePath SchedulingMode = iota
	// ModeAggregate sprays every stream across all live connections for
	// bandwidth aggregation; a loss on one TCP connection can then stall
	// delivery of the whole stream (the HOL tradeoff of §2.1).
	ModeAggregate
)

// Callbacks deliver session events to the application, mirroring the
// "CB events" arrows of Figure 3. All callbacks are optional and are
// invoked from internal goroutines — they must not block.
type Callbacks struct {
	// ConnEstablished fires when a TCP connection finishes its TCPLS
	// handshake (initial or JOIN).
	ConnEstablished func(pathID uint32, local, remote net.Addr)
	// ConnClosed fires when a TCP connection dies or is closed; failed
	// reports whether it was an error (failover candidates) or orderly.
	ConnClosed func(pathID uint32, failed bool)
	// StreamOpened fires when the peer opens a stream.
	StreamOpened func(s *Stream)
	// TCPOption fires when a TCP option arrives over the secure channel
	// (after the session applied it, §3.1).
	TCPOption func(kind uint8, data []byte)
	// AddressAdvertised fires for each address learned over the secure
	// channel (§2.2).
	AddressAdvertised func(addr netip.AddrPort, primary bool)
	// CCInstalled fires after an eBPF congestion controller shipped by
	// the peer was verified and installed (§3(iii)).
	CCInstalled func(name string)
	// Join fires on servers when a client attaches a new connection.
	Join func(pathID uint32, remote net.Addr)
	// PathDegraded fires when the health monitor declares a path dead
	// (probe timeout) and fails it over proactively — before the
	// transport surfaced any error.
	PathDegraded func(pathID uint32, reason error)
	// SessionDegraded fires when middlebox interference forces the
	// session to shed capabilities (AllowDegraded); caps is the full set
	// now disabled, cause the detected trigger.
	SessionDegraded func(caps Capability, cause string)
	// SessionClosed fires once, when the session terminates.
	SessionClosed func(err error)
	// FlightDump fires when an anomaly (stall, shed, degradation, abort)
	// dumps the session's flight recorder. The dump is a snapshot; the
	// callback may retain it.
	FlightDump func(dump SessionDump)
}

// Config configures a TCPLS session endpoint.
type Config struct {
	// TLS carries certificates, roots, ALPN and resumption state. The
	// TCPLS extension plumbing is installed by this package.
	TLS *tls13.Config
	// Multipath advertises/accepts bandwidth aggregation (§2.4).
	Multipath bool
	// Mode selects the scheduling mode once multiple connections exist.
	Mode SchedulingMode
	// NumCookies is how many JOIN cookies the server issues (default 8).
	NumCookies int
	// AdvertiseAddresses are extra server endpoints announced in the
	// handshake (the dual-stack advertisement of §2.2).
	AdvertiseAddresses []netip.AddrPort
	// UserTimeout, when set on a client, is sent to the server over the
	// secure channel as a TCP User Timeout option (§3.1) and applied
	// locally where the transport allows.
	UserTimeout time.Duration
	// EnableAcks turns on TCPLS acknowledgments (default true via
	// DisableAcks=false); they drive the failover replay buffer (§2.1).
	DisableAcks bool
	// RecordSize fixes the stream-chunk size. Zero means cross-layer
	// sizing: match the chunk to the congestion window to avoid
	// fragmented records (§4.6) when the transport is introspectable,
	// else DefaultRecordSize.
	RecordSize int
	// Callbacks receive session events.
	Callbacks Callbacks
	// Clock scales protocol timers on emulated networks (optional).
	Clock Clock
	// HealthProbeInterval enables per-path health monitoring when > 0:
	// every interval (virtual time) the session sends a PING over each
	// live connection's secure channel and tracks RTT and unanswered
	// probes. A path with HealthFailAfter consecutive unanswered probes
	// is failed over proactively — detecting silent blackholes (stalled
	// middleboxes, dead links) long before TCP's retransmission timers
	// give up.
	HealthProbeInterval time.Duration
	// HealthFailAfter is how many consecutive unanswered probes mark a
	// path dead (default 3).
	HealthFailAfter int
	// Retry tunes the reconnection backoff (zero value = defaults:
	// 50ms base, 2s cap, ×2 growth, ±50% jitter, 8 attempts).
	Retry RetryPolicy
	// RetrySeed seeds backoff jitter for reproducible runs (0 = random).
	RetrySeed int64
	// Limits bounds the resources a peer can make this session consume
	// (paths, streams, buffered bytes, handshake time). Zero fields take
	// the package defaults.
	Limits ResourceLimits
	// AllowDegraded enables graceful degradation under middlebox
	// interference: a client whose TCPLS handshake is mangled in flight
	// falls back to plain TLS over one TCP connection, a server accepts
	// plain-TLS clients as degraded sessions, and repeated JOIN failures
	// shed multipath instead of retrying forever. Off by default: without
	// it, interference is a hard error.
	AllowDegraded bool
	// JoinFailLimit is how many consecutive JOIN failures (with a live
	// primary) disable multipath when AllowDegraded is set (default 3).
	JoinFailLimit int
	// RevalidateTimeout bounds a path re-validation probe after a
	// detected 4-tuple rebind (virtual time, default 500ms): an
	// unanswered probe degrades the path immediately.
	RevalidateTimeout time.Duration
	// Tracer receives structured session/path/stream/health events. A
	// nil tracer (or one with no sink) is disabled at zero cost.
	Tracer *telemetry.Tracer
	// Metrics, when set, receives the session's pull-mode vars under
	// session.<n>.* (and per-path gauges under session.<n>.path.<id>.*).
	Metrics *telemetry.Registry
	// Accounting, when set on a listener, enforces server-wide budgets:
	// admission control at accept/handshake/JOIN, global path and stream
	// caps, and prioritized load shedding under pressure. Sessions
	// inherit it from their listener; nil disables every check.
	Accounting *Accounting
	// StallTimeout enables the stall watchdog when > 0: a stream whose
	// unacked data sees no ack progress for this long (virtual time), or
	// a path whose peer advertises a zero receive window that long while
	// data is pending, ends the session with a typed *StallError and
	// reclaims its buffers. Off by default.
	StallTimeout time.Duration
	// StallCheckInterval is the watchdog sweep interval (default
	// StallTimeout/4).
	StallCheckInterval time.Duration
	// TraceSampleRate, when > 1, forwards full-fidelity trace events to
	// Tracer for only one session in N (chosen deterministically by the
	// process-wide session sequence number); the per-session flight
	// recorder still records every session. 0 or 1 traces every session.
	TraceSampleRate int
	// FlightRecorderSize is the per-session flight-recorder capacity in
	// events (0 = default 256; negative disables the recorder). The
	// recorder keeps the session's last N events at zero steady-state
	// allocation and dumps them on anomalies (stalls, sheds,
	// degradations, aborts) via Callbacks.FlightDump / FlightDumpDir.
	FlightRecorderSize int
	// FlightDumpDir, when set, receives one JSONL artifact per anomaly
	// dump (flight-s<seq>-<connid>.jsonl) alongside the FlightDump
	// callback.
	FlightDumpDir string
	// Shards is the listener's session-table shard count, rounded up to
	// a power of two (0 = 64). Each shard holds its slice of the conn-id
	// space under its own lock, so accept, JOIN and teardown contend
	// only when their ids share a shard.
	Shards int
	// AcceptWorkers is the listener's handshake worker-pool size (0 =
	// 32): accepted connections are batched into a queue and handshaken
	// by this fixed pool, instead of one goroutine per connection.
	AcceptWorkers int
	// AcceptBacklog is the depth of the queue between the accept loop
	// and the handshake workers (0 = 8×AcceptWorkers). A connection
	// arriving to a full queue is closed pre-TLS and counted as a
	// rejected_pre_tls overload rejection.
	AcceptBacklog int
	// onTeardown is the listener's teardown hook (session-table removal
	// and conn-id release); set by sessionConfig, never by callers.
	onTeardown func(*Session)
	// runtime is the listener's shared timer/event machinery; sessions
	// carrying one are swept by its timer loop instead of running their
	// own health-monitor and watchdog goroutines. Set by sessionConfig,
	// never by callers.
	runtime *serverRuntime
}

// Clock abstracts timer scaling; netsim.Network implements it. Timers
// land on a hierarchical timing wheel (the clock owner's, or the
// process-wide default), so arming one is allocation-free after the
// first use and firing costs no per-timer goroutine.
type Clock interface {
	AfterFunc(d time.Duration, f func()) *timingwheel.Timer
	ScaleDuration(d time.Duration) time.Duration
}

type realClock struct{}

func (realClock) AfterFunc(d time.Duration, f func()) *timingwheel.Timer {
	return timingwheel.Default().AfterFunc(d, f)
}
func (realClock) ScaleDuration(d time.Duration) time.Duration { return d }

// DefaultRecordSize is the stream chunk size when the transport offers
// no congestion-window introspection.
const DefaultRecordSize = 4096

// MaxRecordPayload bounds a stream chunk to what one TLS record holds.
const MaxRecordPayload = tls13.MaxPlaintext - record.StreamHeaderLen - 1

// ackInterval is how many received bytes trigger a TCPLS ack.
const ackInterval = 64 << 10

// replayBufferLimit bounds un-acked retained data per stream; Write
// blocks when the buffer is full (ack-driven flow control).
const replayBufferLimit = 4 << 20

// Session is one TCPLS session: a secure byte-stream multiplexer over a
// set of TCP connections.
type Session struct {
	role   Role
	cfg    *Config
	limits ResourceLimits // cfg.Limits with defaults applied
	seq    uint32         // process-wide session number (metrics namespace)
	ctr    sessionCounters

	mu       sync.Mutex
	conns    map[uint32]*pathConn
	primary  *pathConn
	nextPath uint32

	streams      map[uint32]*Stream
	nextStreamID uint32
	acceptCh     chan *Stream

	connID    uint32   // session identifier (Figure 2's CONNID)
	cookies   [][]byte // client: unused cookies received from the server
	joinKey   []byte   // HMAC key authenticating JOINs
	peerAddrs []record.Advertisement

	multipath bool // negotiated

	dialer     Dialer
	pendingTCP net.Conn   // dialed before Handshake (primary-to-be)
	preJoin    []net.Conn // dialed before Handshake (extra paths)
	lastRemote netip.AddrPort

	closed    bool
	closeErr  error
	closeOnce sync.Once
	closeCh   chan struct{} // closed in teardown; cancels backoffs/probes

	jitter       *jitterRNG    // reconnect backoff randomness
	reconnecting bool          // single-flight guard for Session.reconnect
	healthOnce   sync.Once     // starts the health monitor at most once
	watchdogOnce sync.Once     // starts the stall watchdog at most once
	probeSeq     atomic.Uint32 // next health-probe sequence number

	// server-wide accounting (nil when no Accounting is configured)
	acct         *Accounting
	acctAdmitted bool         // this session holds a server session slot (s.mu)
	acctStreams  int          // global stream slots held (s.mu)
	lastActive   atomic.Int64 // wall nanos of the last data record sent/received

	// latency instrumentation and flight recorder
	flight        *telemetry.FlightRecorder // last-N event ring (all sessions)
	traceSampled  bool                      // selected for full-fidelity tracing
	startWall     time.Time                 // construction time (flight clock fallback)
	blackoutStart atomic.Int64              // wall nanos of last data before an unplanned path loss

	// graceful degradation state (middlebox interference)
	disabledCaps Capability // capabilities shed so far
	plainMode    bool       // fell back to plain TLS (no TCPLS framing)
	joinFails    int        // consecutive JOIN failures

	// server-side bookkeeping
	issuedCookies map[string]bool // outstanding (unused) cookie set
}

func newSession(role Role, cfg *Config, dialer Dialer) *Session {
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	s := &Session{
		role:          role,
		cfg:           cfg,
		limits:        cfg.Limits.withDefaults(),
		seq:           sessionSeq.Add(1),
		conns:         make(map[uint32]*pathConn),
		streams:       make(map[uint32]*Stream),
		acceptCh:      make(chan *Stream, 64),
		dialer:        dialer,
		issuedCookies: make(map[string]bool),
		closeCh:       make(chan struct{}),
		jitter:        newJitterRNG(cfg.RetrySeed),
		acct:          cfg.Accounting,
	}
	s.startWall = time.Now()
	s.lastActive.Store(s.startWall.UnixNano())
	if cfg.FlightRecorderSize >= 0 {
		s.flight = telemetry.NewFlightRecorder(cfg.FlightRecorderSize)
	}
	s.traceSampled = cfg.TraceSampleRate <= 1 || s.seq%uint32(cfg.TraceSampleRate) == 0
	if role == RoleClient {
		s.nextStreamID = 1 // client-initiated streams are odd
	} else {
		s.nextStreamID = 2 // server-initiated streams are even
	}
	s.registerSessionMetrics()
	if reg := cfg.Metrics; reg != nil {
		reg.Counter("sessions.opened").Inc()
		reg.Gauge("sessions.live").Add(1)
	}
	return s
}

// Role returns which end of the session this is.
func (s *Session) Role() Role { return s.role }

// ConnID returns the session identifier assigned by the server.
func (s *Session) ConnID() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connID
}

// CookiesLeft reports how many unused JOIN cookies the client holds.
func (s *Session) CookiesLeft() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role == RoleClient {
		return len(s.cookies)
	}
	return len(s.issuedCookies)
}

// PeerAddresses returns the addresses the peer advertised (encrypted
// ADD_ADDR semantics, §2.2/§4.1).
func (s *Session) PeerAddresses() []netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netip.AddrPort, 0, len(s.peerAddrs))
	for _, a := range s.peerAddrs {
		out = append(out, netip.AddrPortFrom(a.Addr, a.Port))
	}
	return out
}

// Multipath reports whether bandwidth aggregation was negotiated.
func (s *Session) Multipath() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.multipath
}

// NumConns returns the number of live TCP connections in the session.
func (s *Session) NumConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, pc := range s.conns {
		if !pc.isClosed() {
			n++
		}
	}
	return n
}

// PathIDs lists the live path ids.
func (s *Session) PathIDs() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint32, 0, len(s.conns))
	for id, pc := range s.conns {
		if !pc.isClosed() {
			out = append(out, id)
		}
	}
	return out
}

// deriveJoinKey computes the session's JOIN authentication key from the
// primary connection's exporter interface.
func deriveJoinKey(tc *tls13.Conn, connID uint32) ([]byte, error) {
	var ctx [4]byte
	binary.BigEndian.PutUint32(ctx[:], connID)
	return tc.ExportSecret("tcpls join", ctx[:], 32)
}

// joinBinder authenticates a cookie for a JOIN: an on-path observer of
// the original handshake cannot compute it (§4.1's fix for MPTCP's
// plaintext keys).
func joinBinder(joinKey, cookie []byte) []byte {
	m := hmac.New(sha256.New, joinKey)
	m.Write([]byte("tcpls join binder"))
	m.Write(cookie)
	return m.Sum(nil)
}

func randomCookie() []byte {
	c := make([]byte, record.CookieLen)
	if _, err := rand.Read(c); err != nil {
		panic("tcpls: rand: " + err.Error())
	}
	return c
}

// registerPath adds a ready pathConn to the session and starts its read
// loop (and, on the first path, the health monitor). It fails — closing
// the path — if the session is gone or already at its path limit.
func (s *Session) registerPath(pc *pathConn) error {
	s.mu.Lock()
	if s.closed {
		// The session died while this path was handshaking: closing it
		// here is the only way its read loop won't leak.
		s.mu.Unlock()
		pc.close(ErrSessionClosed)
		return ErrSessionClosed
	}
	live := 0
	for _, c := range s.conns {
		if !c.isClosed() {
			live++
		}
	}
	if live >= s.limits.MaxPaths {
		err := &LimitError{Limit: "paths", Max: s.limits.MaxPaths}
		s.mu.Unlock()
		pc.close(err)
		return err
	}
	// Server-wide budget after the per-session one: a single peer at its
	// own cap never even touches the global ledger.
	if err := s.acct.acquirePath(); err != nil {
		s.mu.Unlock()
		pc.close(err)
		return err
	}
	pc.accounted = true // released by pc.close
	if s.primary == nil {
		s.primary = pc
	}
	s.conns[pc.id] = pc
	s.mu.Unlock()
	// Label the transport's own trace events with the TCPLS path id so
	// tcp:* and path:* events correlate on one timeline.
	if ts, ok := pc.tcp.(traceIDSetter); ok {
		ts.SetTraceID(pc.id)
	}
	joined := int64(0)
	if pc.joined {
		joined = 1
	}
	s.emit(telemetry.Event{
		Kind: telemetry.EvPathJoin,
		Path: pc.id,
		A:    joined,
		S:    pc.tcp.RemoteAddr().String(),
	})
	s.registerPathMetrics(pc)
	if pc.plain {
		// Degraded plain-TLS path: raw bytes, no control channel to
		// probe — the health monitor has nothing to say about it.
		go pc.plainReadLoop()
	} else {
		go pc.readLoop()
	}
	if rt := s.cfg.runtime; rt != nil {
		// Server sessions: the listener's shared timer loop drives health
		// probing and the stall watchdog for every enrolled session, so
		// the read loop above is this path's only steady-state goroutine.
		rt.enroll(s)
	} else {
		if !pc.plain {
			s.startHealthMonitor()
		}
		s.startStallWatchdog()
	}
	if cb := s.cfg.Callbacks.ConnEstablished; cb != nil {
		cb(pc.id, pc.tcp.LocalAddr(), pc.tcp.RemoteAddr())
	}
	return nil
}

func (s *Session) allocPathID() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextPath++
	return s.nextPath
}

// livePaths returns the live connections, primary first.
func (s *Session) livePaths() []*pathConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*pathConn
	if s.primary != nil && !s.primary.isClosed() {
		out = append(out, s.primary)
	}
	for _, pc := range s.conns {
		if pc != s.primary && !pc.isClosed() {
			out = append(out, pc)
		}
	}
	return out
}

// Path returns a live path by id.
func (s *Session) path(id uint32) *pathConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	pc := s.conns[id]
	if pc == nil || pc.isClosed() {
		return nil
	}
	return pc
}

// Close terminates the session: a SessionClose control record tells the
// peer this is a deliberate, authenticated termination (§2.1 "securely
// terminate"), then every TCP connection closes.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if pc := s.primaryPath(); pc != nil {
		pc.writeControl(record.SessionClose{})
	}
	s.teardown(nil)
	return nil
}

func (s *Session) primaryPath() *pathConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.primary != nil && !s.primary.isClosed() {
		return s.primary
	}
	for _, pc := range s.conns {
		if !pc.isClosed() {
			return pc
		}
	}
	return nil
}

// teardown closes everything; err is the cause (nil for orderly close).
func (s *Session) teardown(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closeErr = err
	close(s.closeCh) // cancels in-flight backoffs and the health monitor
	conns := make([]*pathConn, 0, len(s.conns))
	for _, pc := range s.conns {
		conns = append(conns, pc)
	}
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	admitted := s.acctAdmitted
	s.acctAdmitted = false
	heldStreams := s.acctStreams
	s.acctStreams = 0
	s.mu.Unlock()
	s.acct.releaseStreams(heldStreams)
	if admitted {
		s.acct.releaseSession(s) // may reopen the admission gate
	}
	for _, pc := range conns {
		pc.close(nil)
	}
	termErr := err
	if termErr == nil {
		termErr = ErrSessionClosed
	}
	for _, st := range streams {
		st.terminate(termErr)
	}
	close(s.acceptCh)
	reason := "orderly"
	if err != nil {
		reason = err.Error()
	}
	s.emit(telemetry.Event{Kind: telemetry.EvSessionClose, S: reason})
	if err != nil {
		// Anomalous end (stall, shed, overload, abort): dump the flight
		// recorder while its ring still holds the events leading here.
		s.flightDump(reason)
	}
	s.rollupSessionMetrics()
	s.unregisterSessionMetrics()
	if rt := s.cfg.runtime; rt != nil {
		rt.unenroll(s) // stop shared sweeps (plain sessions enroll too)
	}
	if hook := s.cfg.onTeardown; hook != nil {
		hook(s) // listener bookkeeping: session-table and conn-id release
	}
	s.closeOnce.Do(func() {
		if cb := s.cfg.Callbacks.SessionClosed; cb != nil {
			cb(err)
		}
	})
}

// touch records data activity (a stream record sent or received) for
// idle classification by the shed pass. Control traffic — health pings,
// acks — deliberately does not count: a session kept "alive" only by
// its own probes is exactly the idle session shedding must reclaim.
func (s *Session) touch() {
	s.lastActive.Store(time.Now().UnixNano())
}

// Err returns the terminal session error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// Closed reports whether the session has terminated.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// waitForPath blocks until a live connection exists (returning it), the
// session closes, or the (virtual) timeout expires. Session close aborts
// the wait immediately rather than burning the rest of the poll budget.
func (s *Session) waitForPath(d time.Duration) *pathConn {
	deadline := time.Now().Add(s.cfg.Clock.ScaleDuration(d))
	for time.Now().Before(deadline) {
		if s.Closed() {
			return nil
		}
		if pc := s.primaryPath(); pc != nil {
			return pc
		}
		if !s.sleepCancelable(2 * time.Millisecond) {
			return nil
		}
	}
	return nil
}

func (s *Session) String() string {
	return fmt.Sprintf("tcpls session connid=%d conns=%d", s.ConnID(), s.NumConns())
}
