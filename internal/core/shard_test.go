package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestShardMapRounding pins the power-of-two sizing: any requested
// count rounds up to the next power of two, zero takes the default,
// and excess is clamped.
func TestShardMapRounding(t *testing.T) {
	cases := []struct {
		name string
		in   int
		want int
	}{
		{"zero takes default", 0, defaultShards},
		{"negative takes default", -3, defaultShards},
		{"one stays one", 1, 1},
		{"power of two kept", 64, 64},
		{"rounds up", 65, 128},
		{"small rounds up", 3, 4},
		{"clamped to max", maxShards * 4, maxShards},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newShardMap(tc.in)
			if got := len(m.shards); got != tc.want {
				t.Fatalf("newShardMap(%d) built %d shards, want %d", tc.in, got, tc.want)
			}
			if m.mask != uint32(len(m.shards)-1) {
				t.Fatalf("mask %#x does not match %d shards", m.mask, len(m.shards))
			}
		})
	}
}

// TestShardIndexDistribution drives structured id patterns through the
// mixer and asserts no shard is badly over-loaded. Minted ids are
// uniform random, but the table must also spread sequential and
// stride-patterned ids (test harnesses, adversarial JOIN targets) —
// that is the whole point of the avalanche finalizer over a bare mask.
func TestShardIndexDistribution(t *testing.T) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(7))
	patterns := []struct {
		name string
		gen  func(i int) uint32
	}{
		{"sequential", func(i int) uint32 { return uint32(i + 1) }},
		{"stride-64", func(i int) uint32 { return uint32((i + 1) * 64) }},
		{"stride-4096", func(i int) uint32 { return uint32((i + 1) * 4096) }},
		{"high-bits-only", func(i int) uint32 { return uint32(i+1) << 18 }},
		{"random", func(i int) uint32 { return rng.Uint32() }},
	}
	for _, p := range patterns {
		t.Run(p.name, func(t *testing.T) {
			m := newShardMap(64)
			counts := make([]int, len(m.shards))
			for i := 0; i < n; i++ {
				counts[m.shardIndex(p.gen(i))]++
			}
			mean := n / len(m.shards) // 256 per shard
			for i, c := range counts {
				// 2x mean is a loose bound: a true uniform distribution puts
				// each shard within a few percent; a broken mixer collapses
				// whole patterns onto a handful of shards and blows through it.
				if c > 2*mean {
					t.Fatalf("pattern %s: shard %d holds %d of %d ids (mean %d) — mixer not avalanching",
						p.name, i, c, n, mean)
				}
			}
		})
	}
}

// TestShardMapConcurrent hammers insert/get/remove/reserve/release from
// many goroutines (run under -race): the table must stay consistent
// with no global lock, and conditional remove must never evict a
// different session that reused the id.
func TestShardMapConcurrent(t *testing.T) {
	m := newShardMap(8) // few shards -> heavy per-shard contention
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				id := m.reserve(func() uint32 { return rng.Uint32() })
				s := &Session{}
				m.insert(id, s)
				if got := m.get(id); got != s {
					t.Errorf("get(%d) = %p after insert of %p", id, got, s)
					return
				}
				// A stale remove with the wrong owner must be a no-op.
				m.remove(id, &Session{})
				if got := m.get(id); got != s {
					t.Errorf("remove with foreign owner evicted id %d", id)
					return
				}
				m.remove(id, s)
				if got := m.get(id); got != nil {
					t.Errorf("get(%d) = %p after remove", id, got)
					return
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if n := m.len(); n != 0 {
		t.Fatalf("table holds %d sessions after full churn", n)
	}
	if n := m.reservedLen(); n != 0 {
		t.Fatalf("table holds %d reservations after full churn", n)
	}
}

// TestShardMapReserveCollision pins the reserve/pickConnID interaction:
// a candidate that collides with a live session or an existing
// reservation is redrawn, never handed out twice, and zero is never
// reserved.
func TestShardMapReserveCollision(t *testing.T) {
	m := newShardMap(4)
	s := &Session{}
	m.insert(42, s)
	held := m.reserve(func() uint32 { return 99 })
	if held != 99 {
		t.Fatalf("reserve drew %d, want 99", held)
	}
	// Script a draw sequence hitting: zero, the live session, the held
	// reservation, then a fresh id.
	seq := []uint32{0, 42, 99, 7}
	draws := 0
	id := m.reserve(func() uint32 { d := seq[draws]; draws++; return d })
	if id != 7 {
		t.Fatalf("reserve = %d, want 7", id)
	}
	if draws != len(seq) {
		t.Fatalf("reserve consumed %d draws, want %d (every collision redrawn)", draws, len(seq))
	}
	// Both reservations outstanding; releasing one frees exactly it.
	if n := m.reservedLen(); n != 2 {
		t.Fatalf("reservedLen = %d, want 2", n)
	}
	m.release(99)
	if m.taken(99) {
		t.Fatal("released id still taken")
	}
	if !m.taken(7) {
		t.Fatal("release of 99 also freed 7")
	}
	// A released id is mintable again.
	if got := m.reserve(func() uint32 { return 99 }); got != 99 {
		t.Fatalf("re-reserve of released id = %d, want 99", got)
	}
}

// TestShardMapConcurrentReserveUnique races many reservers drawing from
// overlapping id streams: every reservation handed out must be unique
// (the check-and-mark under one shard lock is what reservation
// exactness rests on once the global mutex is gone).
func TestShardMapConcurrentReserveUnique(t *testing.T) {
	m := newShardMap(8)
	const (
		workers = 8
		perW    = 500
	)
	var mu sync.Mutex
	seen := make(map[uint32]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Narrow id space (1..4096) forces real collisions between
			// workers, not just theoretical ones.
			rng := rand.New(rand.NewSource(seed))
			ids := make([]uint32, 0, perW)
			for i := 0; i < perW; i++ {
				ids = append(ids, m.reserve(func() uint32 { return uint32(rng.Intn(4096)) }))
			}
			mu.Lock()
			for _, id := range ids {
				seen[id]++
			}
			mu.Unlock()
		}(int64(w) + 100)
	}
	wg.Wait()
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("conn id %d reserved %d times", id, n)
		}
	}
	if len(seen) != workers*perW {
		t.Fatalf("%d unique ids for %d reservations", len(seen), workers*perW)
	}
	if n := m.reservedLen(); n != workers*perW {
		t.Fatalf("reservedLen = %d, want %d", n, workers*perW)
	}
}
