package core

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// NewClient creates a client session (tcpls_new). Connections are added
// with Connect / ConnectHappyEyeballs, then Handshake runs TCPLS over
// the primary connection — the workflow of Figure 3.
func NewClient(cfg *Config, dialer Dialer) *Session {
	if cfg.TLS == nil {
		cfg.TLS = &tls13.Config{}
	}
	return newSession(RoleClient, cfg, dialer)
}

// Connect opens a TCP connection for the session (tcpls_connect). Before
// Handshake, the first Connect establishes the primary connection;
// afterwards each Connect performs a JOIN handshake (Figure 2) and adds
// a path. laddr may be the zero Addr to pick a source automatically.
func (s *Session) Connect(laddr netip.Addr, raddr netip.AddrPort, timeout time.Duration) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if s.plainMode {
		// A degraded plain-TLS session has no JOIN: without it a new
		// connection could never be tied to this session.
		s.mu.Unlock()
		return 0, ErrCapabilityDisabled
	}
	handshaken := s.joinKey != nil
	pending := s.pendingTCP != nil
	s.mu.Unlock()

	dialStart := time.Now()
	tcp, err := s.dialer.Dial(laddr, raddr, timeout)
	if err != nil {
		return 0, err
	}
	// TCP-connect phase, split from the TLS/TCPLS phases so handshake
	// regressions separate transport latency from crypto latency.
	s.observePhase("connect_ns", dialStart)
	s.mu.Lock()
	s.lastRemote = raddr
	s.mu.Unlock()
	if !handshaken && !pending {
		s.mu.Lock()
		s.pendingTCP = tcp
		s.mu.Unlock()
		return 0, nil
	}
	if !handshaken {
		// A second pre-handshake connection (explicit multipath mesh):
		// queue it; it will JOIN right after the handshake.
		s.mu.Lock()
		s.preJoin = append(s.preJoin, tcp)
		s.mu.Unlock()
		return 0, nil
	}
	pc, err := s.join(tcp)
	if err != nil {
		tcp.Close()
		return 0, err
	}
	return pc.id, nil
}

// ConnectHappyEyeballs races connection attempts to the candidate
// addresses with the given stagger (50 ms in Figure 3), keeping the
// first to establish — RFC 8305's approach to broken address families.
func (s *Session) ConnectHappyEyeballs(raddrs []netip.AddrPort, stagger time.Duration, timeout time.Duration) (netip.AddrPort, error) {
	if len(raddrs) == 0 {
		return netip.AddrPort{}, ErrNoAddresses
	}
	if stagger <= 0 {
		stagger = 50 * time.Millisecond
	}
	type result struct {
		conn net.Conn
		addr netip.AddrPort
		err  error
	}
	results := make(chan result, len(raddrs))
	var wg sync.WaitGroup
	for i, ra := range raddrs {
		wg.Add(1)
		go func(delay time.Duration, ra netip.AddrPort) {
			defer wg.Done()
			if delay > 0 {
				time.Sleep(s.cfg.Clock.ScaleDuration(delay))
			}
			conn, err := s.dialer.Dial(netip.Addr{}, ra, timeout)
			results <- result{conn, ra, err}
		}(time.Duration(i)*stagger, ra)
	}
	go func() { wg.Wait(); close(results) }()

	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		// Winner: adopt it; close any latecomers.
		s.mu.Lock()
		if s.pendingTCP == nil && s.joinKey == nil {
			s.pendingTCP = r.conn
			s.lastRemote = r.addr
			s.mu.Unlock()
			go func() {
				for late := range results {
					if late.err == nil && late.conn != nil {
						late.conn.Close()
					}
				}
			}()
			return r.addr, nil
		}
		s.mu.Unlock()
		r.conn.Close()
	}
	if firstErr == nil {
		firstErr = ErrNoAddresses
	}
	return netip.AddrPort{}, firstErr
}

// Handshake performs the TCPLS handshake on the primary connection
// (tcpls_handshake): TLS 1.3 with the TCPLS extension; the server's
// EncryptedExtensions deliver the CONNID, the JOIN cookies α0..αn and
// any advertised addresses (Figure 2). Queued extra connections then
// JOIN automatically.
func (s *Session) Handshake() error {
	hsStart := time.Now()
	s.mu.Lock()
	tcp := s.pendingTCP
	s.pendingTCP = nil
	preJoin := s.preJoin
	s.preJoin = nil
	s.mu.Unlock()
	if tcp == nil {
		return ErrNoConnection
	}

	hello := &record.ClientHelloTCPLS{Version: record.Version, Multipath: s.cfg.Multipath}
	tlsCfg := s.cloneTLSConfig()
	tlsCfg.ExtraClientHello = append(tlsCfg.ExtraClientHello,
		tls13.Extension{Type: tls13.ExtTCPLS, Data: hello.Encode()})

	tc := tls13.Client(tcp, tlsCfg)
	// Bound the handshake: a stalled or byte-dribbling server must not
	// pin this goroutine (and its connection) open forever.
	tcp.SetDeadline(time.Now().Add(s.cfg.Clock.ScaleDuration(s.limits.HandshakeTimeout)))
	if err := tc.Handshake(); err != nil {
		tcp.Close()
		if s.cfg.AllowDegraded {
			// A middlebox that strips or mangles the TCPLS ClientHello
			// extension corrupts the TLS transcript; the only recovery is
			// a fresh connection without the extension — plain TLS.
			return s.fallbackPlainHandshake("handshake interference: " + err.Error())
		}
		return err
	}
	tcp.SetDeadline(time.Time{})
	s.observePhase("tls_handshake_ns", hsStart)
	tlsDone := time.Now()
	st := tc.ConnectionState()
	if st.PeerTCPLS == nil {
		if s.cfg.AllowDegraded {
			// The handshake completed but the server answered plain TLS
			// (extension stripped cleanly en route): keep the connection,
			// shed every TCPLS capability.
			return s.adoptPlain(tcp, tc, "tcpls not negotiated")
		}
		tcp.Close()
		return errors.New("tcpls: server did not negotiate TCPLS")
	}
	srv, err := record.DecodeServerTCPLS(st.PeerTCPLS)
	if err != nil {
		tcp.Close()
		return fmt.Errorf("tcpls: bad server extension: %w", err)
	}
	joinKey, err := deriveJoinKey(tc, srv.ConnID)
	if err != nil {
		tcp.Close()
		return err
	}

	s.mu.Lock()
	s.connID = srv.ConnID
	s.cookies = clampCookiePool(append(s.cookies, srv.Cookies...))
	s.peerAddrs = append(s.peerAddrs, srv.Addresses...)
	if n := s.limits.MaxPeerAddresses; len(s.peerAddrs) > n {
		s.peerAddrs = s.peerAddrs[:n]
	}
	s.joinKey = joinKey
	s.multipath = s.cfg.Multipath && srv.Multipath
	s.mu.Unlock()

	s.emit(telemetry.Event{
		Kind: telemetry.EvSessionStart,
		A:    int64(srv.ConnID),
		S:    "client",
	})
	pc := newPathConn(s, tcp, tc)
	if err := s.registerPath(pc); err != nil {
		return err
	}
	// The session is TCPLS-ready: extension decoded, join key derived,
	// path registered with its read loop running.
	s.observePhase("tcpls_ready_ns", tlsDone)
	s.observePhase("handshake_ns.client", hsStart)
	for _, a := range srv.Addresses {
		if cb := s.cfg.Callbacks.AddressAdvertised; cb != nil {
			cb(netip.AddrPortFrom(a.Addr, a.Port), a.Primary)
		}
	}

	// Apply the configured user timeout: locally, and to the peer over
	// the secure channel (§3.1).
	if s.cfg.UserTimeout > 0 {
		if in := pc.introspector(); in != nil {
			in.SetUserTimeout(s.cfg.UserTimeout)
		}
		pc.writeTCPOption(record.UserTimeoutOption(s.cfg.UserTimeout))
	}

	// Attach any pre-handshake extra connections (explicit multipath).
	for _, extra := range preJoin {
		if _, err := s.join(extra); err != nil {
			extra.Close()
		}
	}
	return nil
}

// join runs a JOIN handshake (Figure 2) on an established TCP
// connection and registers the new path.
func (s *Session) join(tcp net.Conn) (*pathConn, error) {
	joinStart := time.Now()
	// Check the path budget before burning a cookie: the server would
	// reject the JOIN anyway once we are at the limit.
	if s.NumConns() >= s.limits.MaxPaths {
		return nil, &LimitError{Limit: "paths", Max: s.limits.MaxPaths}
	}
	// Multipath shed after repeated interference: stop opening extra
	// paths. A JOIN with zero live connections is failover rescue, not
	// bandwidth aggregation, and stays allowed.
	if s.capDisabled(CapMultipath) && s.NumConns() >= 1 {
		return nil, ErrCapabilityDisabled
	}
	s.mu.Lock()
	if s.joinKey == nil {
		s.mu.Unlock()
		return nil, errors.New("tcpls: join before handshake")
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return nil, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	join := &record.ClientHelloTCPLS{
		Version:   record.Version,
		Multipath: s.cfg.Multipath,
		Join: &record.JoinRequest{
			ConnID: s.connID,
			Cookie: cookie,
			Binder: joinBinder(s.joinKey, cookie),
		},
	}
	s.mu.Unlock()

	tlsCfg := s.cloneTLSConfig()
	tlsCfg.ExtraClientHello = append(tlsCfg.ExtraClientHello,
		tls13.Extension{Type: tls13.ExtTCPLS, Data: join.Encode()})
	tc := tls13.Client(tcp, tlsCfg)
	tcp.SetDeadline(time.Now().Add(s.cfg.Clock.ScaleDuration(s.limits.HandshakeTimeout)))
	if err := tc.Handshake(); err != nil {
		// Transport-level failure (the link died mid-JOIN): the cookie may
		// never have reached the server, so requeue it at the back of the
		// pool rather than burning it. If the server did consume it, the
		// retry is simply rejected and the next cookie is used — without
		// this, a fault burst can exhaust the pool and strand reconnect.
		s.mu.Lock()
		s.cookies = append(s.cookies, cookie)
		s.mu.Unlock()
		err = fmt.Errorf("%w: %v", ErrJoinRejected, err)
		s.noteJoinFailure(err)
		return nil, err
	}
	tcp.SetDeadline(time.Time{})
	st := tc.ConnectionState()
	srv, err := record.DecodeServerTCPLS(st.PeerTCPLS)
	if err != nil || srv.ConnID != s.ConnID() {
		s.noteJoinFailure(ErrJoinRejected)
		return nil, ErrJoinRejected
	}
	s.mu.Lock()
	s.cookies = clampCookiePool(append(s.cookies, srv.Cookies...)) // replenished cookies
	s.mu.Unlock()

	pc := newPathConn(s, tcp, tc)
	pc.joined = true
	if err := s.registerPath(pc); err != nil {
		return nil, err
	}
	s.observePhase("handshake_ns.join", joinStart)
	s.noteJoinSuccess()
	return pc, nil
}

// maxCookiePool bounds the client-side JOIN cookie pool: the server
// replenishes cookies on every JOIN, and a hostile server could other-
// wise grow the pool without bound.
const maxCookiePool = 64

func clampCookiePool(cookies [][]byte) [][]byte {
	if len(cookies) > maxCookiePool {
		cookies = cookies[:maxCookiePool]
	}
	return cookies
}

// cloneTLSConfig copies the user TLS config so per-connection extension
// plumbing does not race.
func (s *Session) cloneTLSConfig() *tls13.Config {
	src := s.cfg.TLS
	return &tls13.Config{
		ServerName:         src.ServerName,
		Certificate:        src.Certificate,
		RootCAs:            src.RootCAs,
		InsecureSkipVerify: src.InsecureSkipVerify,
		ALPN:               src.ALPN,
		CipherSuites:       src.CipherSuites,
		Session:            src.Session,
		NumTickets:         src.NumTickets,
		OnNewSession:       src.OnNewSession,
	}
}

// SendTCPOption ships a TCP option to the peer over the secure channel
// (tcpls_send_tcpoption, §3.1) on the primary connection.
func (s *Session) SendTCPOption(kind uint8, data []byte) error {
	pc := s.primaryPath()
	if pc == nil {
		return ErrNoConnection
	}
	return pc.writeTCPOption(&record.TCPOption{Kind: kind, Data: data})
}

// SendUserTimeout ships an RFC 5482 User Timeout option (§3.1).
func (s *Session) SendUserTimeout(d time.Duration) error {
	pc := s.primaryPath()
	if pc == nil {
		return ErrNoConnection
	}
	return pc.writeTCPOption(record.UserTimeoutOption(d))
}

// SendBPFCC ships an eBPF congestion-control program to the peer
// (§3(iii)); the receiver verifies and installs it.
func (s *Session) SendBPFCC(name string, bytecode []byte) error {
	pc := s.primaryPath()
	if pc == nil {
		return ErrNoConnection
	}
	return pc.writeControl(record.BPFCC{Name: name, Bytecode: bytecode})
}

// AdvertiseAddress announces an additional local endpoint over the
// secure channel (the encrypted ADD_ADDR of §4.1).
func (s *Session) AdvertiseAddress(ap netip.AddrPort, primary bool) error {
	pc := s.primaryPath()
	if pc == nil {
		return ErrNoConnection
	}
	return pc.writeControl(record.AddAddress{Addr: ap.Addr(), Port: ap.Port(), Primary: primary})
}

// Ping probes the given path (liveness): the answering Pong feeds the
// path's RTT estimate exactly like a monitor-initiated probe.
func (s *Session) Ping(pathID uint32) error {
	pc := s.path(pathID)
	if pc == nil {
		return ErrNoConnection
	}
	seq := s.probeSeq.Add(1)
	pc.health.noteSent(seq, time.Now())
	return pc.writeControl(record.Ping{Seq: seq})
}

// ClosePath gracefully closes one TCP connection: the migration step of
// Figure 4 ("secure closing of the v4 TCP connection"). Streams
// attached to it move to the session's remaining connections.
func (s *Session) ClosePath(pathID uint32) error {
	pc := s.path(pathID)
	if pc == nil {
		return ErrNoConnection
	}
	pc.writeControl(record.ConnClose{ConnID: pathID})
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	isPrimary := s.primary == pc
	s.mu.Unlock()
	pc.close(nil)
	if isPrimary {
		s.mu.Lock()
		s.primary = nil
		for _, cand := range s.conns {
			if !cand.isClosed() {
				s.primary = cand
				break
			}
		}
		s.mu.Unlock()
	}
	// Re-home streams that were attached to the closed path.
	if next := s.primaryPath(); next != nil {
		for _, st := range streams {
			st.mu.Lock()
			moved := st.attached == pc
			if moved {
				st.attached = next
			}
			st.mu.Unlock()
			if moved {
				st.replayUnacked(next)
			}
		}
	}
	return nil
}
