package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// TestLimitErrorWrappingAllKinds: every limit kind the session can hit
// must match ErrLimitExceeded through errors.Is and surface its
// configured maximum through errors.As — including when wrapped.
func TestLimitErrorWrappingAllKinds(t *testing.T) {
	kinds := []struct {
		limit string
		max   int
	}{
		{"paths", DefaultMaxPaths},
		{"streams", DefaultMaxStreams},
		{"stream reassembly", DefaultMaxStreamRecvBuffer},
		{"peer addresses", DefaultMaxPeerAddresses},
	}
	for _, k := range kinds {
		err := error(&LimitError{Limit: k.limit, Max: k.max})
		if !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("%s: does not match ErrLimitExceeded", k.limit)
		}
		wrapped := fmt.Errorf("op failed: %w", err)
		if !errors.Is(wrapped, ErrLimitExceeded) {
			t.Fatalf("%s: wrapping broke errors.Is", k.limit)
		}
		var le *LimitError
		if !errors.As(wrapped, &le) || le.Limit != k.limit || le.Max != k.max {
			t.Fatalf("%s: errors.As lost detail, got %#v", k.limit, le)
		}
		if errors.Is(err, ErrServerOverloaded) {
			t.Fatalf("%s: per-session limit must not alias the server overload sentinel", k.limit)
		}
	}
}

// TestResourceLimitsWithDefaults: zero-value and partially-set limits
// fill in exactly the documented defaults, leaving set fields alone.
func TestResourceLimitsWithDefaults(t *testing.T) {
	z := ResourceLimits{}.withDefaults()
	want := ResourceLimits{
		MaxPaths:            DefaultMaxPaths,
		MaxStreams:          DefaultMaxStreams,
		MaxStreamRecvBuffer: DefaultMaxStreamRecvBuffer,
		MaxPeerAddresses:    DefaultMaxPeerAddresses,
		HandshakeTimeout:    DefaultHandshakeTimeout,
	}
	if z != want {
		t.Fatalf("zero value defaults = %+v, want %+v", z, want)
	}

	p := ResourceLimits{MaxPaths: 2, HandshakeTimeout: time.Second}.withDefaults()
	if p.MaxPaths != 2 || p.HandshakeTimeout != time.Second {
		t.Fatalf("set fields clobbered: %+v", p)
	}
	if p.MaxStreams != DefaultMaxStreams || p.MaxStreamRecvBuffer != DefaultMaxStreamRecvBuffer ||
		p.MaxPeerAddresses != DefaultMaxPeerAddresses {
		t.Fatalf("zero fields not defaulted: %+v", p)
	}

	// Negative values are nonsense, not "disabled": they default too.
	n := ResourceLimits{MaxPaths: -1, MaxStreams: -5, HandshakeTimeout: -time.Second}.withDefaults()
	if n != want {
		t.Fatalf("negative values not defaulted: %+v", n)
	}
}

// TestNewStreamLimit: locally opening streams past MaxStreams fails
// with a typed error instead of growing without bound.
func TestNewStreamLimit(t *testing.T) {
	v4, v6 := fastLinks()
	cliCfg := &Config{Limits: ResourceLimits{MaxStreams: 4}}
	e := dualStackEnv(t, v4, v6, cliCfg, &Config{})
	cli, _ := e.connect(t, cliCfg)

	for i := 0; i < 4; i++ {
		if _, err := cli.NewStream(); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	_, err := cli.NewStream()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("5th stream: got %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "streams" || le.Max != 4 {
		t.Fatalf("want *LimitError{streams,4}, got %#v", err)
	}
	if cli.Closed() {
		t.Fatal("local limit must not kill the session")
	}
}

// TestPeerStreamFloodTearsDown: a peer opening streams past the
// server's budget is a protocol violation — the session ends with
// ErrLimitExceeded rather than allocating unboundedly.
func TestPeerStreamFloodTearsDown(t *testing.T) {
	v4, v6 := fastLinks()
	srvCfg := &Config{Limits: ResourceLimits{MaxStreams: 4}}
	cliCfg := &Config{}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)

	for i := 0; i < 8; i++ {
		st, err := cli.NewStream()
		if err != nil {
			break // session may already be dying mid-flood
		}
		st.Write([]byte{1}) // forces StreamOpen on the wire
	}
	waitFor(t, 5*time.Second, func() bool {
		return errors.Is(srv.Err(), ErrLimitExceeded)
	}, "server did not tear down on stream flood")
	if n := len(srv.Streams()); n > 4 {
		t.Fatalf("server holds %d streams, limit is 4", n)
	}
	cli.Close()
}

// TestPathLimitLocal: Connect past the local MaxPaths budget fails
// typed, without burning a JOIN cookie.
func TestPathLimitLocal(t *testing.T) {
	v4, v6 := fastLinks()
	cliCfg := &Config{Limits: ResourceLimits{MaxPaths: 1}}
	e := dualStackEnv(t, v4, v6, cliCfg, &Config{})
	cli, _ := e.connect(t, cliCfg)

	before := cli.CookiesLeft()
	_, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV6, 443), 5*time.Second)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("second path: got %v, want ErrLimitExceeded", err)
	}
	if after := cli.CookiesLeft(); after != before {
		t.Fatalf("local rejection burned a cookie: %d -> %d", before, after)
	}
	if cli.NumConns() != 1 {
		t.Fatalf("NumConns = %d, want 1", cli.NumConns())
	}
}

// TestJoinRejectedAtServerPathLimit: the server refuses JOINs once the
// session is at its path budget — before consuming the one-time cookie.
func TestJoinRejectedAtServerPathLimit(t *testing.T) {
	v4, v6 := fastLinks()
	srvCfg := &Config{Limits: ResourceLimits{MaxPaths: 1}}
	cliCfg := &Config{}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)

	_, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV6, 443), 5*time.Second)
	if !errors.Is(err, ErrJoinRejected) {
		t.Fatalf("join past server budget: got %v, want ErrJoinRejected", err)
	}
	if n := srv.NumConns(); n != 1 {
		t.Fatalf("server NumConns = %d, want 1", n)
	}
	if srv.Closed() {
		t.Fatal("a rejected JOIN must not kill the session")
	}
}

// TestAddAddressBound: ADD_ADDR spray stops accumulating at
// MaxPeerAddresses; the session stays up.
func TestAddAddressBound(t *testing.T) {
	v4, v6 := fastLinks()
	cliCfg := &Config{Limits: ResourceLimits{MaxPeerAddresses: 3}}
	e := dualStackEnv(t, v4, v6, cliCfg, &Config{})
	cli, srv := e.connect(t, cliCfg)

	for i := 0; i < 20; i++ {
		ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}), 443)
		if err := srv.AdvertiseAddress(ap, false); err != nil {
			t.Fatal(err)
		}
	}
	// Let at least some of the spray land, then check the bound held.
	waitFor(t, 5*time.Second, func() bool {
		return len(cli.PeerAddresses()) >= 3
	}, "no advertisements arrived")
	time.Sleep(100 * time.Millisecond)
	if n := len(cli.PeerAddresses()); n > 3 {
		t.Fatalf("peer address set grew to %d, limit is 3", n)
	}
	if cli.Closed() {
		t.Fatal("address spray must degrade gracefully, not kill the session")
	}
}

// TestHandshakeStallReaped: a connection that never speaks TLS is cut
// off by the handshake deadline instead of pinning the accept goroutine.
func TestHandshakeStallReaped(t *testing.T) {
	v4, v6 := fastLinks()
	srvCfg := &Config{Limits: ResourceLimits{HandshakeTimeout: 300 * time.Millisecond}}
	e := dualStackEnv(t, v4, v6, &Config{}, srvCfg)

	conn, err := (tcpnet.Dialer{Stack: e.client}).Dial(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		var b [1]byte
		_, err := conn.Read(b[:]) // blocks until the server reaps us
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil; want connection closed by deadline")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled handshake was never reaped")
	}
}

// TestStreamRecvBackpressure: a slow reader bounds per-stream receive
// memory — the read loop parks instead of buffering — and the transfer
// still completes intact once the application catches up.
func TestStreamRecvBackpressure(t *testing.T) {
	v4, v6 := fastLinks()
	const limit = 64 << 10
	srvCfg := &Config{Limits: ResourceLimits{MaxStreamRecvBuffer: limit}}
	cliCfg := &Config{}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)

	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	go func() {
		st, err := cli.NewStream()
		if err != nil {
			return
		}
		st.Write(payload)
		st.Close()
	}()

	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	// Don't read yet: watch the buffer while the sender pushes.
	peak := 0
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ss := range srv.StreamStates() {
			if ss.RecvBuffered > peak {
				peak = ss.RecvBuffered
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One in-flight chunk may land after the buffer filled to the brim.
	if peak > limit+MaxRecordPayload {
		t.Fatalf("receive buffer peaked at %d, limit %d", peak, limit)
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

// TestReassemblyViolationTearsDown: out-of-order data far beyond any
// compliant sender's replay buffer is an attack; the session ends with
// a typed error instead of buffering it.
func TestReassemblyViolationTearsDown(t *testing.T) {
	v4, v6 := fastLinks()
	srvCfg := &Config{Limits: ResourceLimits{MaxStreamRecvBuffer: 32 << 10}}
	cliCfg := &Config{}
	e := dualStackEnv(t, v4, v6, cliCfg, srvCfg)
	cli, srv := e.connect(t, cliCfg)

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("hi"))
	waitFor(t, 5*time.Second, func() bool { return len(srv.Streams()) > 0 },
		"stream never reached the server")
	sst := srv.Streams()[0]

	// White-box: inject the hostile chunk directly at the delivery layer,
	// as if a peer with a valid stream context sent it.
	sst.deliver(nil, &record.StreamChunk{
		StreamID: sst.ID(), Offset: 1 << 30, Data: make([]byte, 40<<10),
	}, nil)
	if !errors.Is(srv.Err(), ErrLimitExceeded) {
		t.Fatalf("server error = %v, want ErrLimitExceeded", srv.Err())
	}
	cli.Close()
}
