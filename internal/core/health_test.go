package core

import (
	"testing"
	"time"
)

// TestHealthEWMAConvergence feeds a constant RTT through the probe
// bookkeeping and checks the RFC 6298-style smoother converges to it.
func TestHealthEWMAConvergence(t *testing.T) {
	h := &pathHealth{}
	base := time.Now()
	const rtt = 40 * time.Millisecond

	// First sample seeds srtt directly.
	h.noteSent(1, base)
	if got, ok := h.notePong(1, base.Add(rtt)); !ok || got != rtt {
		t.Fatalf("first sample: rtt=%v ok=%v, want %v true", got, ok, rtt)
	}
	if h.srtt != rtt {
		t.Fatalf("srtt seeded to %v, want %v", h.srtt, rtt)
	}

	// Jump the instantaneous RTT: srtt must move toward it at 1/8 gain.
	const spike = 120 * time.Millisecond
	h.noteSent(2, base)
	h.notePong(2, base.Add(spike))
	want := (7*rtt + spike) / 8
	if h.srtt != want {
		t.Fatalf("after spike srtt = %v, want %v", h.srtt, want)
	}

	// A long run of constant samples converges back within a millisecond.
	for seq := uint32(3); seq < 40; seq++ {
		h.noteSent(seq, base)
		h.notePong(seq, base.Add(rtt))
	}
	if diff := h.srtt - rtt; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("srtt did not converge: %v, want ~%v", h.srtt, rtt)
	}
	if h.probesSent != 39 || h.pongsRecv != 39 {
		t.Fatalf("probe accounting: sent=%d recv=%d, want 39/39", h.probesSent, h.pongsRecv)
	}
}

// TestHealthOutstandingAccounting checks that unanswered probes
// accumulate, answered probes clear their slot, and unmatched or
// duplicate pongs neither count nor disturb srtt.
func TestHealthOutstandingAccounting(t *testing.T) {
	h := &pathHealth{}
	base := time.Now()

	for seq := uint32(1); seq <= 3; seq++ {
		h.noteSent(seq, base)
	}
	if n := h.outstandingCount(); n != 3 {
		t.Fatalf("outstanding = %d, want 3", n)
	}

	// Answer the middle probe only.
	if _, ok := h.notePong(2, base.Add(time.Millisecond)); !ok {
		t.Fatal("matching pong rejected")
	}
	if n := h.outstandingCount(); n != 2 {
		t.Fatalf("outstanding after pong = %d, want 2", n)
	}

	// Duplicate pong for the same seq: ignored.
	if _, ok := h.notePong(2, base.Add(2*time.Millisecond)); ok {
		t.Fatal("duplicate pong accepted")
	}
	// Pong for a probe never sent: ignored.
	if _, ok := h.notePong(99, base.Add(2*time.Millisecond)); ok {
		t.Fatal("unmatched pong accepted")
	}
	if h.pongsRecv != 1 {
		t.Fatalf("pongsRecv = %d, want 1", h.pongsRecv)
	}
	srttBefore := h.srtt
	h.notePong(99, base)
	if h.srtt != srttBefore {
		t.Fatal("unmatched pong moved srtt")
	}

	// A pong timestamped before its probe (clock skew) clamps to zero
	// rather than going negative.
	h.noteSent(10, base.Add(time.Second))
	if rtt, ok := h.notePong(10, base); !ok || rtt != 0 {
		t.Fatalf("skewed pong: rtt=%v ok=%v, want 0 true", rtt, ok)
	}
}

// TestMarkDegradedHysteresis checks degradation latches: the first call
// wins, every later call reports already-degraded so the failover path
// runs exactly once per path.
func TestMarkDegradedHysteresis(t *testing.T) {
	h := &pathHealth{}
	if !h.markDegraded() {
		t.Fatal("first markDegraded returned false")
	}
	for i := 0; i < 3; i++ {
		if h.markDegraded() {
			t.Fatal("markDegraded fired twice")
		}
	}
	// Still degraded after further probe traffic — no silent reset.
	h.noteSent(1, time.Now())
	h.notePong(1, time.Now())
	if h.markDegraded() {
		t.Fatal("probe traffic reset the degraded latch")
	}
}
