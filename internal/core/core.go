package core
