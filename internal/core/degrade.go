package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/bufpool"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Graceful degradation (the paper's Table 1 claim, measured): when a
// middlebox strips or mangles TCPLS signals — the ClientHello extension,
// JOIN handshakes, a pinned 4-tuple — the session sheds the capability
// the interference killed instead of aborting. The ladder runs from
// "full TCPLS" through "single-path TCPLS" down to "plain TLS over one
// TCP connection", which is exactly what the hostile middle of the
// Internet already tolerates. Every rung down emits a typed
// session:degraded event carrying the detected cause.

// Capability is a bitmask of TCPLS features a session can shed under
// middlebox interference.
type Capability uint32

// Capabilities, from most to least commonly lost.
const (
	// CapMultipath is bandwidth aggregation over extra JOINed paths.
	CapMultipath Capability = 1 << iota
	// CapMigration is connection migration/failover rescue via JOIN.
	CapMigration
	// CapControlChannel is the TCPLS record-layer control channel
	// (encrypted TCP options, acks, address advertisements).
	CapControlChannel

	// CapAll is every TCPLS capability; losing all of them is plain TLS.
	CapAll = CapMultipath | CapMigration | CapControlChannel
)

// String renders the capability set for traces.
func (c Capability) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	if c&CapMultipath != 0 {
		parts = append(parts, "multipath")
	}
	if c&CapMigration != 0 {
		parts = append(parts, "migration")
	}
	if c&CapControlChannel != 0 {
		parts = append(parts, "control")
	}
	return strings.Join(parts, "|")
}

// ErrCapabilityDisabled reports an operation refused because middlebox
// interference already forced the session to shed the capability.
var ErrCapabilityDisabled = errors.New("tcpls: capability disabled after middlebox interference")

// defaultJoinFailLimit is how many consecutive JOIN handshake failures
// (with a healthy primary) disable multipath when Config.JoinFailLimit
// is zero.
const defaultJoinFailLimit = 3

// defaultRevalidateTimeout bounds a path re-validation probe (virtual
// time) when Config.RevalidateTimeout is zero.
const defaultRevalidateTimeout = 500 * time.Millisecond

// plainStreamID is the single stream a degraded plain-TLS session
// carries: the client's first stream id, so both ends agree without any
// TCPLS framing on the wire.
const plainStreamID = 1

// DegradedCaps returns the capabilities the session has shed.
func (s *Session) DegradedCaps() Capability {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disabledCaps
}

// PlainMode reports whether the session fell back to plain TLS over a
// single TCP connection (no TCPLS framing on the wire).
func (s *Session) PlainMode() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plainMode
}

// capDisabled reports whether a capability has been shed.
func (s *Session) capDisabled(c Capability) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disabledCaps&c != 0
}

// disableCapability sheds capabilities, emitting the typed degrade
// event with the detected cause. Idempotent per capability.
func (s *Session) disableCapability(c Capability, cause string) {
	s.mu.Lock()
	fresh := c &^ s.disabledCaps
	if fresh == 0 {
		s.mu.Unlock()
		return
	}
	s.disabledCaps |= c
	now := s.disabledCaps
	s.mu.Unlock()
	s.ctr.capsDegraded.Add(1)
	s.emit(telemetry.Event{
		Kind: telemetry.EvSessionDegraded,
		A:    int64(now),
		S:    fmt.Sprintf("%s: %s", fresh, cause),
	})
	if cb := s.cfg.Callbacks.SessionDegraded; cb != nil {
		cb(now, cause)
	}
	// Degradation is an anomaly worth a flight-recorder artifact even
	// though the session keeps running.
	s.flightDump("degraded: " + cause)
}

// noteJoinFailure counts consecutive JOIN failures. Interference that
// kills JOIN handshakes while the primary stays healthy (a middlebox
// mangling secondary ClientHellos) must not be retried forever: past the
// limit the session sheds multipath and runs single-path.
func (s *Session) noteJoinFailure(cause error) {
	limit := s.cfg.JoinFailLimit
	if limit <= 0 {
		limit = defaultJoinFailLimit
	}
	s.mu.Lock()
	s.joinFails++
	n := s.joinFails
	s.mu.Unlock()
	if n >= limit && s.cfg.AllowDegraded && s.primaryPath() != nil {
		s.disableCapability(CapMultipath, fmt.Sprintf("%d consecutive join failures (%v)", n, cause))
	}
}

// noteJoinSuccess resets the consecutive-failure counter.
func (s *Session) noteJoinSuccess() {
	s.mu.Lock()
	s.joinFails = 0
	s.mu.Unlock()
}

// enterPlainMode marks the session degraded to plain TLS: every TCPLS
// capability is shed, and the (single) path carries raw application
// bytes instead of TCPLS records.
func (s *Session) enterPlainMode(cause string) {
	s.mu.Lock()
	s.plainMode = true
	s.mu.Unlock()
	s.disableCapability(CapAll, cause)
}

// adoptPlain registers an established plain-TLS connection as the
// session's single degraded path.
func (s *Session) adoptPlain(tcp net.Conn, tc *tls13.Conn, cause string) error {
	s.enterPlainMode(cause)
	pc := newPathConn(s, tcp, tc)
	pc.plain = true
	return s.registerPath(pc)
}

// fallbackPlainHandshake redials the last remote and runs a plain TLS
// handshake — no TCPLS extension for a middlebox to choke on. This is
// the client's reaction to a mangled/stripped primary handshake: the
// original TLS transcript was corrupted in flight, so only a fresh
// connection can succeed.
func (s *Session) fallbackPlainHandshake(cause string) error {
	s.mu.Lock()
	raddr := s.lastRemote
	s.mu.Unlock()
	if !raddr.IsValid() {
		return ErrNoAddresses
	}
	pol := s.cfg.Retry.withDefaults()
	tcp, err := s.dialer.Dial(netip.Addr{}, raddr, pol.DialTimeout)
	if err != nil {
		return fmt.Errorf("tcpls: plain fallback dial: %w", err)
	}
	tc := tls13.Client(tcp, s.cloneTLSConfig())
	tcp.SetDeadline(time.Now().Add(s.cfg.Clock.ScaleDuration(s.limits.HandshakeTimeout)))
	if err := tc.Handshake(); err != nil {
		tcp.Close()
		return fmt.Errorf("tcpls: plain fallback handshake: %w", err)
	}
	tcp.SetDeadline(time.Time{})
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "client-degraded"})
	return s.adoptPlain(tcp, tc, cause)
}

// writePlainChunk maps a stream chunk onto the bare TLS connection: data
// becomes application bytes, the FIN becomes a TLS half-close. There is
// no TCPLS ack machinery on a plain path, so the chunk is self-acked —
// the replay buffer exists for failover, and a plain session has no
// failover.
func (pc *pathConn) writePlainChunk(c *record.StreamChunk) error {
	s := pc.session
	if c.Fin {
		pc.writeMu.Lock()
		err := pc.tls.CloseWrite()
		pc.writeMu.Unlock()
		if err != nil {
			return err
		}
		s.plainSelfAck(c.StreamID, c.Offset+1)
		return nil
	}
	pc.writeMu.Lock()
	_, err := pc.tls.Write(c.Data)
	pc.writeMu.Unlock()
	if err != nil {
		return err
	}
	s.ctr.recordsSent.Add(1)
	s.ctr.bytesSent.Add(uint64(len(c.Data)))
	s.touch()
	s.emit(telemetry.Event{
		Kind:   telemetry.EvRecordSent,
		Path:   pc.id,
		Stream: c.StreamID,
		A:      int64(len(c.Data)),
		B:      int64(c.Offset),
	})
	s.plainSelfAck(c.StreamID, c.Offset+uint64(len(c.Data)))
	return nil
}

func (s *Session) plainSelfAck(streamID uint32, offset uint64) {
	s.mu.Lock()
	st := s.streams[streamID]
	s.mu.Unlock()
	if st != nil {
		st.handleAck(offset)
	}
}

// plainReadLoop pumps raw TLS application bytes into the session's
// single stream, synthesizing offsets locally (TCP already delivers
// in-order on the one path). An orderly EOF becomes the stream FIN and
// leaves the write half usable — plain TLS half-close semantics.
func (pc *pathConn) plainReadLoop() {
	var offset uint64
	for {
		buf := bufpool.Get(DefaultRecordSize)
		n, err := pc.tls.Read(buf)
		if n > 0 {
			chunk := &record.StreamChunk{StreamID: plainStreamID, Offset: offset, Data: buf[:n]}
			offset += uint64(n)
			pc.session.dispatchChunk(pc, chunk, buf)
		} else {
			bufpool.Put(buf)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				pc.session.dispatchChunk(pc, &record.StreamChunk{
					StreamID: plainStreamID, Offset: offset, Fin: true,
				}, nil)
				return
			}
			pc.handleDeath(err)
			return
		}
	}
}

// --- path re-validation (NAT rebind detection) ---

// detectRebind inspects a newly joined path against the session's other
// live paths: the same peer host arriving from a different port means a
// NAT rebound the old mapping mid-session, and the old path is very
// likely a blackhole. Rather than letting its health silently decay
// through the full probe-failure budget, the old path gets an immediate
// re-validation probe with a hard deadline.
func (s *Session) detectRebind(newPC *pathConn) {
	newAddr, ok := remoteAddrPort(newPC)
	if !ok {
		return
	}
	for _, pc := range s.livePaths() {
		if pc == newPC || pc.plain {
			continue
		}
		old, ok := remoteAddrPort(pc)
		if !ok {
			continue
		}
		// Same host, different port: a rebound 4-tuple. A different host
		// is legitimate multipath (v4+v6), not a rebind.
		if old.Addr() == newAddr.Addr() && old.Port() != newAddr.Port() {
			s.revalidatePath(pc, fmt.Sprintf("4-tuple rebind %s -> %s", old, newAddr))
		}
	}
}

// revalidatePath sends one probe on a suspect path and degrades it if
// the probe goes unanswered within the re-validation timeout — a
// bounded, explicit liveness check instead of waiting for the health
// monitor's slower consecutive-failure budget.
func (s *Session) revalidatePath(pc *pathConn, cause string) {
	if pc.isClosed() || s.Closed() {
		return
	}
	seq := s.probeSeq.Add(1)
	pc.health.noteSent(seq, time.Now())
	s.emit(telemetry.Event{
		Kind: telemetry.EvPathRevalidate,
		Path: pc.id,
		A:    int64(seq),
		S:    cause,
	})
	go pc.writeControl(record.Ping{Seq: seq})
	timeout := s.cfg.RevalidateTimeout
	if timeout <= 0 {
		timeout = defaultRevalidateTimeout
	}
	s.cfg.Clock.AfterFunc(timeout, func() {
		if pc.isClosed() || s.Closed() {
			return
		}
		if pc.health.isOutstanding(seq) {
			// The rebound path never answered: it is a blackhole.
			s.degradePath(pc)
		}
	})
}

// remoteAddrPort extracts the peer's transport address when the
// underlying net.Addr carries one.
func remoteAddrPort(pc *pathConn) (netip.AddrPort, bool) {
	addr := pc.tcp.RemoteAddr()
	if addr == nil {
		return netip.AddrPort{}, false
	}
	if a, ok := addr.(interface{ AddrPort() netip.AddrPort }); ok {
		return a.AddrPort(), true
	}
	parsed, err := netip.ParseAddrPort(addr.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return parsed, true
}
