package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/cc"
	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
	"github.com/pluginized-protocols/gotcpls/internal/netsim"
	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/tcpnet"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

var (
	cV4 = netip.MustParseAddr("10.0.0.1")
	sV4 = netip.MustParseAddr("10.0.0.2")
	cV6 = netip.MustParseAddr("fc00::1")
	sV6 = netip.MustParseAddr("fc00::2")
)

var coreCert *tls13.Certificate

func init() {
	var err error
	coreCert, err = tls13.GenerateSelfSigned("tcpls", nil, nil)
	if err != nil {
		panic(err)
	}
}

type coreEnv struct {
	net      *netsim.Network
	linkV4   *netsim.Link
	linkV6   *netsim.Link
	client   *tcpnet.Stack
	server   *tcpnet.Stack
	listener *Listener
}

// dualStackEnv builds the paper's testbed shape: client and server with
// v4 and v6 paths over separate links.
func dualStackEnv(t *testing.T, v4cfg, v6cfg netsim.LinkConfig, clientCfg, serverCfg *Config, netOpts ...netsim.Option) *coreEnv {
	t.Helper()
	n := netsim.New(netOpts...)
	ch, sh := n.Host("client"), n.Host("server")
	l4 := n.AddLink(ch, sh, cV4, sV4, v4cfg)
	l6 := n.AddLink(ch, sh, cV6, sV6, v6cfg)
	cs := tcpnet.NewStack(ch, tcpnet.Config{})
	ss := tcpnet.NewStack(sh, tcpnet.Config{})
	tl, err := ss.Listen(netip.Addr{}, 443)
	if err != nil {
		t.Fatal(err)
	}
	if serverCfg.TLS == nil {
		serverCfg.TLS = &tls13.Config{}
	}
	serverCfg.TLS.Certificate = coreCert
	if len(serverCfg.AdvertiseAddresses) == 0 {
		serverCfg.AdvertiseAddresses = []netip.AddrPort{
			netip.AddrPortFrom(sV4, 443),
			netip.AddrPortFrom(sV6, 443),
		}
	}
	serverCfg.Clock = n
	clientCfg.Clock = n
	if clientCfg.TLS == nil {
		clientCfg.TLS = &tls13.Config{}
	}
	clientCfg.TLS.InsecureSkipVerify = true
	lst := NewListener(tl, serverCfg)
	t.Cleanup(func() {
		lst.Close()
		cs.Close()
		ss.Close()
		n.Close()
	})
	return &coreEnv{net: n, linkV4: l4, linkV6: l6, client: cs, server: ss, listener: lst}
}

// connect establishes a client session and returns it with the matching
// server session.
func (e *coreEnv) connect(t *testing.T, cfg *Config) (*Session, *Session) {
	t.Helper()
	if cfg.TLS == nil {
		cfg.TLS = &tls13.Config{InsecureSkipVerify: true}
	}
	cfg.TLS.InsecureSkipVerify = true
	cfg.Clock = e.net
	cli := NewClient(cfg, tcpnet.Dialer{Stack: e.client})
	type res struct {
		s   *Session
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		s, err := e.listener.Accept()
		acceptCh <- res{s, err}
	}()
	if _, err := cli.Connect(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := cli.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return cli, r.s
}

func fastLinks() (netsim.LinkConfig, netsim.LinkConfig) {
	return netsim.LinkConfig{Delay: time.Millisecond, Name: "v4"},
		netsim.LinkConfig{Delay: 2 * time.Millisecond, Name: "v6"}
}

func TestHandshakeAndStreamEcho(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, srv := e.connect(t, &Config{})
	if cli.ConnID() == 0 || cli.ConnID() != srv.ConnID() {
		t.Fatalf("connid: %d vs %d", cli.ConnID(), srv.ConnID())
	}
	if cli.CookiesLeft() == 0 {
		t.Fatal("no cookies issued")
	}
	if len(cli.PeerAddresses()) != 2 {
		t.Fatalf("advertised addresses: %v", cli.PeerAddresses())
	}

	st, err := cli.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(sst)
		up := bytes.ToUpper(data)
		sst2, _ := srv.NewStream()
		sst2.Write(up)
		sst2.Close()
	}()
	st.Write([]byte("hello tcpls"))
	st.Close()
	back, err := cli.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(back)
	if err != nil || string(got) != "HELLO TCPLS" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestStreamIDParity(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, srv := e.connect(t, &Config{})
	c1, _ := cli.NewStream()
	c2, _ := cli.NewStream()
	s1, _ := srv.NewStream()
	if c1.ID()%2 != 1 || c2.ID()%2 != 1 || s1.ID()%2 != 0 {
		t.Fatalf("ids: %d %d %d", c1.ID(), c2.ID(), s1.ID())
	}
	if c1.ID() == c2.ID() {
		t.Fatal("duplicate ids")
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	v4, v6 := fastLinks()
	v4.BandwidthBps = 100e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, srv := e.connect(t, &Config{})
	data := make([]byte, 2<<20)
	rand.Read(data)
	st, _ := cli.NewStream()
	go func() {
		st.Write(data)
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corruption: %d vs %d", len(got), len(data))
	}
	// Acks must have drained the replay buffer.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st.BytesUnacked() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replay buffer not drained: %d", st.BytesUnacked())
}

func TestMultipleConcurrentStreams(t *testing.T) {
	v4, v6 := fastLinks()
	v4.BandwidthBps = 100e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, srv := e.connect(t, &Config{})
	const N = 5
	payloads := make([][]byte, N)
	for i := range payloads {
		payloads[i] = make([]byte, 100<<10)
		rand.Read(payloads[i])
	}
	errCh := make(chan error, 2*N)
	for i := 0; i < N; i++ {
		st, err := cli.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		go func(st *Stream, p []byte) {
			_, err := st.Write(p)
			if err == nil {
				err = st.Close()
			}
			errCh <- err
		}(st, payloads[i])
	}
	seen := make(map[uint32][]byte)
	for i := 0; i < N; i++ {
		sst, err := srv.AcceptStream()
		if err != nil {
			t.Fatal(err)
		}
		go func(sst *Stream) {
			data, err := io.ReadAll(sst)
			seenSet(seen, sst.ID(), data)
			errCh <- err
		}(sst)
	}
	for i := 0; i < 2*N; i++ {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("timeout")
		}
	}
	for i := 0; i < N; i++ {
		id := uint32(1 + 2*i)
		if !bytes.Equal(seen[id], payloads[i]) {
			t.Fatalf("stream %d corrupted (%d vs %d bytes)", id, len(seen[id]), len(payloads[i]))
		}
	}
}

var seenMu = make(chan struct{}, 1)

func seenSet(m map[uint32][]byte, k uint32, v []byte) {
	seenMu <- struct{}{}
	m[k] = v
	<-seenMu
}

func TestJoinSecondPath(t *testing.T) {
	v4, v6 := fastLinks()
	var joins atomic.Int32
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{
		Callbacks: Callbacks{Join: func(id uint32, remote net.Addr) { joins.Add(1) }},
	})
	cli, srv := e.connect(t, &Config{})
	before := cli.CookiesLeft()
	pathID, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if pathID == 0 {
		t.Fatal("no path id")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.NumConns() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if cli.NumConns() != 2 || srv.NumConns() != 2 {
		t.Fatalf("conns: %d / %d", cli.NumConns(), srv.NumConns())
	}
	// Cookie spent, but the join reply replenished some.
	if cli.CookiesLeft() < before {
		t.Fatalf("cookies: %d -> %d (no replenish)", before, cli.CookiesLeft())
	}
	if joins.Load() != 1 {
		t.Fatalf("join callback fired %d times", joins.Load())
	}
}

func TestJoinWithForgedBinderRejected(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, _ := e.connect(t, &Config{})

	// Attacker saw the (encrypted) handshake but not the secrets: craft
	// a JOIN with the right ConnID but a wrong binder.
	join := &record.ClientHelloTCPLS{
		Version: record.Version,
		Join: &record.JoinRequest{
			ConnID: cli.ConnID(),
			Cookie: bytes.Repeat([]byte{0x42}, record.CookieLen),
			Binder: bytes.Repeat([]byte{0x13}, 32),
		},
	}
	tcp, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc := tls13.Client(tcp, &tls13.Config{
		InsecureSkipVerify: true,
		ExtraClientHello:   []tls13.Extension{{Type: tls13.ExtTCPLS, Data: join.Encode()}},
	})
	if err := tc.Handshake(); err == nil {
		t.Fatal("forged join accepted")
	}
}

func TestJoinCookieSingleUse(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, _ := e.connect(t, &Config{})
	// Steal a valid (cookie, binder) pair from the client and replay it.
	cli.mu.Lock()
	cookie := append([]byte(nil), cli.cookies[0]...)
	binder := joinBinder(cli.joinKey, cookie)
	connID := cli.connID
	cli.mu.Unlock()
	join := &record.ClientHelloTCPLS{
		Version: record.Version,
		Join:    &record.JoinRequest{ConnID: connID, Cookie: cookie, Binder: binder},
	}
	dial := func() error {
		tcp, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second)
		if err != nil {
			return err
		}
		tc := tls13.Client(tcp, &tls13.Config{
			InsecureSkipVerify: true,
			ExtraClientHello:   []tls13.Extension{{Type: tls13.ExtTCPLS, Data: join.Encode()}},
		})
		return tc.Handshake()
	}
	if err := dial(); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if err := dial(); err == nil {
		t.Fatal("cookie replay accepted")
	}
}

func TestUserTimeoutOptionAppliedOnServer(t *testing.T) {
	v4, v6 := fastLinks()
	var gotKind atomic.Int32
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{
		Callbacks: Callbacks{TCPOption: func(kind uint8, data []byte) { gotKind.Store(int32(kind)) }},
	})
	cli, srv := e.connect(t, &Config{})
	if err := cli.SendUserTimeout(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if gotKind.Load() == 28 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gotKind.Load() != 28 {
		t.Fatal("option not received")
	}
	// "the server extracts it and performs the required setsockopt":
	// find the server-side tcpnet conn and check.
	var applied bool
	for _, pc := range srv.livePaths() {
		if tc, ok := pc.tcp.(*tcpnet.Conn); ok && tc.UserTimeout() == 45*time.Second {
			applied = true
		}
	}
	if !applied {
		t.Fatal("user timeout not applied to the kernel^W tcpnet socket")
	}
}

func TestBPFCCUpgrade(t *testing.T) {
	v4, v6 := fastLinks()
	var installed atomic.Value
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{
		Callbacks: Callbacks{CCInstalled: func(name string) { installed.Store(name) }},
	})
	cli, srv := e.connect(t, &Config{})
	prog := ebpfvm.MustAssemble(cc.AIMDProgram)
	if err := cli.SendBPFCC("aimd", prog.Marshal()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := installed.Load().(string); v == "ebpf:aimd" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var swapped bool
	for _, pc := range srv.livePaths() {
		if tc, ok := pc.tcp.(*tcpnet.Conn); ok && tc.CongestionControlName() == "ebpf:aimd" {
			swapped = true
		}
	}
	if !swapped {
		t.Fatal("eBPF controller not installed")
	}
	// Garbage bytecode is rejected by the verifier and ignored.
	if err := cli.SendBPFCC("junk", []byte{0xff, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	for _, pc := range srv.livePaths() {
		if tc, ok := pc.tcp.(*tcpnet.Conn); ok && tc.CongestionControlName() == "ebpf:junk" {
			t.Fatal("unverified bytecode installed")
		}
	}
}

func TestSessionCloseSecure(t *testing.T) {
	v4, v6 := fastLinks()
	var closedErr atomic.Value
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{
		Callbacks: Callbacks{SessionClosed: func(err error) { closedErr.Store(true) }},
	})
	cli, srv := e.connect(t, &Config{})
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !srv.Closed() {
		time.Sleep(5 * time.Millisecond)
	}
	if !srv.Closed() {
		t.Fatal("server session not closed")
	}
	if srv.Err() != nil {
		t.Fatalf("orderly close reported error: %v", srv.Err())
	}
	if _, err := cli.NewStream(); !errors.Is(err, ErrSessionClosed) {
		t.Fatal("stream created on closed session")
	}
}

func TestMigrationV4ToV6(t *testing.T) {
	// The Figure 4 flow in miniature: download over v4, join v6, attach
	// the stream there, close v4 — the transfer must finish unbroken.
	v4, v6 := fastLinks()
	v4.BandwidthBps, v6.BandwidthBps = 50e6, 50e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, srv := e.connect(t, &Config{})

	data := make([]byte, 1<<20)
	rand.Read(data)
	req, _ := cli.NewStream()
	req.Write([]byte("GET"))
	req.Close()

	go func() {
		sst, err := srv.AcceptStream()
		if err != nil {
			return
		}
		io.ReadAll(sst)
		down, _ := srv.NewStream()
		down.Write(data)
		down.Close()
	}()

	down, err := cli.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	// Read some, then migrate mid-download.
	got := make([]byte, 0, len(data))
	buf := make([]byte, 32<<10)
	for len(got) < 256<<10 {
		n, err := down.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	v4Path := cli.PathIDs()[0]
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second); err != nil {
		t.Fatalf("join v6: %v", err)
	}
	if err := cli.ClosePath(v4Path); err != nil {
		t.Fatalf("close v4: %v", err)
	}
	rest, err := io.ReadAll(down)
	if err != nil {
		t.Fatalf("read after migration: %v", err)
	}
	got = append(got, rest...)
	if !bytes.Equal(got, data) {
		down.mu.Lock()
		t.Logf("client stream: recvNext=%d finalOffset=%d finKnown=%v ooo=%d",
			down.recvNext, down.finalOffset, down.finKnown, len(down.ooo))
		down.mu.Unlock()
		for _, sst := range srv.Streams() {
			sst.mu.Lock()
			t.Logf("server stream %d: sendOffset=%d ackedTo=%d unacked=%d finSent=%v",
				sst.id, sst.sendOffset, sst.ackedTo, len(sst.unacked), sst.finSent)
			sst.mu.Unlock()
		}
		prefix := 0
		for prefix < len(got) && prefix < len(data) && got[prefix] == data[prefix] {
			prefix++
		}
		t.Fatalf("migration corrupted download: %d vs %d bytes (first mismatch at %d)", len(got), len(data), prefix)
	}
	if cli.NumConns() != 1 {
		t.Fatalf("conns after migration: %d", cli.NumConns())
	}
}

func TestFailoverAfterRST(t *testing.T) {
	// A middlebox forges a RST that kills the v4 connection mid-transfer
	// (§2.1): TCPLS reconnects (JOIN) and replays; plain TCP would die.
	v4, v6 := fastLinks()
	v4.BandwidthBps, v6.BandwidthBps = 50e6, 50e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	e.linkV4.Use(&netsim.RSTInjector{AfterSegments: 40, Once: true, BothDirections: true})
	cli, srv := e.connect(t, &Config{})

	data := make([]byte, 1<<20)
	rand.Read(data)
	st, _ := cli.NewStream()
	go func() {
		st.Write(data)
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var got []byte
	var rerr error
	go func() {
		got, rerr = io.ReadAll(sst)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("transfer never completed after RST")
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("failover corrupted data: %d vs %d", len(got), len(data))
	}
}

func TestHappyEyeballsPrefersWorkingFamily(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	e.linkV4.SetDown(true) // v4 broken: eyeballs must settle on v6
	cfg := &Config{TLS: &tls13.Config{InsecureSkipVerify: true}, Clock: e.net}
	cli := NewClient(cfg, tcpnet.Dialer{Stack: e.client})
	go e.listener.Accept()
	addr, err := cli.ConnectHappyEyeballs(
		[]netip.AddrPort{netip.AddrPortFrom(sV4, 443), netip.AddrPortFrom(sV6, 443)},
		50*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatalf("happy eyeballs: %v", err)
	}
	if addr.Addr() != sV6 {
		t.Fatalf("connected to %v, want v6", addr)
	}
	if err := cli.Handshake(); err != nil {
		t.Fatal(err)
	}
}

func TestCWndMatchedRecordSizing(t *testing.T) {
	v4, v6 := fastLinks()
	v4.BandwidthBps = 50e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, _ := e.connect(t, &Config{}) // RecordSize 0 -> cross-layer sizing
	pc := cli.primaryPath()
	if pc == nil {
		t.Fatal("no path")
	}
	n := pc.chunkSize()
	if n < 512 || n > MaxRecordPayload {
		t.Fatalf("chunk size %d out of range", n)
	}
	// With a fixed record size the policy is bypassed.
	cli2, _ := e.connect(t, &Config{RecordSize: 1000})
	if got := cli2.primaryPath().chunkSize(); got != 1000 {
		t.Fatalf("fixed record size ignored: %d", got)
	}
}

func TestPlainTLSClientIgnored(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	tcp, err := e.client.Dial(netip.Addr{}, netip.AddrPortFrom(sV4, 443), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc := tls13.Client(tcp, &tls13.Config{InsecureSkipVerify: true})
	// Handshake succeeds (the listener tolerates plain TLS) but no
	// session is created.
	if err := tc.Handshake(); err != nil {
		t.Fatalf("plain TLS handshake: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := len(e.listener.Sessions()); n != 0 {
		t.Fatalf("plain TLS created %d sessions", n)
	}
}

func TestPingPong(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{})
	cli, _ := e.connect(t, &Config{})
	if err := cli.Ping(cli.PathIDs()[0]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // pong must not wedge the loop
	st, _ := cli.NewStream()
	st.Write([]byte("after ping"))
	st.Close()
}

func TestAddressAdvertisementRuntime(t *testing.T) {
	v4, v6 := fastLinks()
	var advertised atomic.Value
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{
		Callbacks: Callbacks{AddressAdvertised: func(ap netip.AddrPort, primary bool) {
			advertised.Store(ap)
		}},
	})
	cli, _ := e.connect(t, &Config{})
	extra := netip.AddrPortFrom(cV6, 9999)
	if err := cli.AdvertiseAddress(extra, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ap, _ := advertised.Load().(netip.AddrPort); ap == extra {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("advertisement not delivered")
}

func TestMultipathAggregation(t *testing.T) {
	// Two 20 Mbps paths: in aggregate mode the session sprays one stream
	// across both connections and the receiver reorders by offset.
	v4, v6 := fastLinks()
	v4.BandwidthBps, v6.BandwidthBps = 20e6, 20e6
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Multipath: true})
	cli, srv := e.connect(t, &Config{Multipath: true, Mode: ModeAggregate})
	if !cli.Multipath() {
		t.Fatal("multipath not negotiated")
	}
	if _, err := cli.Connect(cV6, netip.AddrPortFrom(sV6, 443), 5*time.Second); err != nil {
		t.Fatalf("join: %v", err)
	}
	data := make([]byte, 2<<20)
	rand.Read(data)
	st, _ := cli.NewStream()
	start := time.Now()
	go func() {
		st.Write(data)
		st.Close()
	}()
	sst, err := srv.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sst)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatalf("aggregation corrupted data: %d vs %d", len(got), len(data))
	}
	// 2 MB over a single 20 Mbps path cannot beat 800 ms; with both
	// paths carrying data the transfer must finish well under that.
	// Race-detector instrumentation slows the real-time emulator below
	// link rate, so the throughput bar only holds in normal builds.
	if !raceEnabled {
		singlePathFloor := time.Duration(float64(len(data)*8) / 20e6 * float64(time.Second))
		if elapsed > singlePathFloor*8/10 {
			t.Fatalf("aggregate transfer took %s, want < 80%% of the single-path floor %s", elapsed, singlePathFloor)
		}
	}
}

func TestMultipathNotNegotiatedWhenServerDeclines(t *testing.T) {
	v4, v6 := fastLinks()
	e := dualStackEnv(t, v4, v6, &Config{}, &Config{Multipath: false})
	cli, _ := e.connect(t, &Config{Multipath: true})
	if cli.Multipath() {
		t.Fatal("multipath negotiated against server policy")
	}
}
