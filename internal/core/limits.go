package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrLimitExceeded is the sentinel for every resource-governance
// rejection; match with errors.Is. The concrete error is always a
// *LimitError naming the exhausted limit.
var ErrLimitExceeded = errors.New("tcpls: resource limit exceeded")

// LimitError reports which resource limit a session operation hit.
type LimitError struct {
	Limit string // which limit ("paths", "streams", ...)
	Max   int    // its configured value
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("tcpls: %s limit exceeded (max %d)", e.Limit, e.Max)
}

// Is makes errors.Is(err, ErrLimitExceeded) match any LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimitExceeded }

// ResourceLimits bounds what a single session may consume. A TCPLS
// peer is authenticated but not trusted: JOINs, StreamOpens, ADD_ADDRs
// and out-of-order data are all peer-controlled and must not translate
// into unbounded local memory or goroutines. Zero fields take the
// defaults below.
type ResourceLimits struct {
	// MaxPaths caps live TCP connections per session. Local Connect
	// calls fail with ErrLimitExceeded; excess peer JOINs are rejected.
	MaxPaths int
	// MaxStreams caps concurrent streams per session. Local NewStream
	// fails with ErrLimitExceeded; a peer opening streams past the cap
	// is a protocol violation and tears the session down.
	MaxStreams int
	// MaxStreamRecvBuffer caps per-stream receive memory: the in-order
	// buffer (backpressure — the path's read loop parks until the
	// application reads, closing the TCP window toward the peer) and
	// the out-of-order reassembly set (violation — a compliant sender
	// retains at most its replay buffer un-acked, so reassembly demand
	// far beyond that is an attack and tears the session down).
	MaxStreamRecvBuffer int
	// MaxPeerAddresses caps addresses learned from the peer (handshake
	// advertisement plus ADD_ADDR frames); the excess is dropped.
	MaxPeerAddresses int
	// HandshakeTimeout bounds how long a TCP connection may sit in the
	// TLS/TCPLS handshake (including JOIN) before it is torn down — a
	// slowloris peer cannot pin goroutines open indefinitely. Measured
	// on the session clock (virtual time under netsim).
	HandshakeTimeout time.Duration
}

// Default resource limits.
const (
	DefaultMaxPaths            = 8
	DefaultMaxStreams          = 256
	DefaultMaxStreamRecvBuffer = 16 << 20
	DefaultMaxPeerAddresses    = 16
	DefaultHandshakeTimeout    = 10 * time.Second
)

// withDefaults fills zero fields with the package defaults.
func (l ResourceLimits) withDefaults() ResourceLimits {
	if l.MaxPaths <= 0 {
		l.MaxPaths = DefaultMaxPaths
	}
	if l.MaxStreams <= 0 {
		l.MaxStreams = DefaultMaxStreams
	}
	if l.MaxStreamRecvBuffer <= 0 {
		l.MaxStreamRecvBuffer = DefaultMaxStreamRecvBuffer
	}
	if l.MaxPeerAddresses <= 0 {
		l.MaxPeerAddresses = DefaultMaxPeerAddresses
	}
	if l.HandshakeTimeout <= 0 {
		l.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return l
}
