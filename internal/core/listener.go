package core

import (
	"crypto/hmac"
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/record"
	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
	"github.com/pluginized-protocols/gotcpls/internal/tls13"
)

// Listener accepts TCPLS sessions: every inbound TCP connection runs a
// TLS handshake; fresh handshakes become new sessions, JOIN handshakes
// (Figure 2) attach to existing sessions after cookie validation.
//
// The runtime is sharded and pooled for C50K-class session counts:
//
//   - The session/reservation table is split into power-of-two shards
//     keyed by conn id (shardMap), so the accept, JOIN and teardown
//     paths never take a listener-wide lock.
//   - The accept loop batches: it drains every already-established
//     connection per wakeup (transports exposing AcceptBatch), runs the
//     cheap pre-TLS admission gate inline, and queues survivors for a
//     fixed pool of handshake workers — a connection storm costs a
//     bounded number of goroutines, not one per SYN.
//   - Per-session timers (health probing, stall watchdogs) run on the
//     listener's shared serverRuntime, so a steady-state server session
//     costs exactly one goroutine per path.
type Listener struct {
	inner net.Listener
	cfg   *Config
	rt    *serverRuntime

	jitter        *jitterRNG    // accept-backoff randomness
	acceptRetries atomic.Uint64 // temporary Accept errors retried
	queueDrops    atomic.Uint64 // conns dropped pre-TLS at a full handshake queue

	table   *shardMap // sessions + in-flight conn-id reservations
	closed  atomic.Bool
	closeCh chan struct{} // closed in Close; cancels accept backoffs

	workers int           // handshake pool size
	pending chan net.Conn // admitted conns awaiting a handshake worker

	acceptMu      sync.Mutex // guards accepts against concurrent Close
	acceptsClosed bool
	accepts       chan *Session
	errs          chan error
}

// acceptBatchSize bounds one batch-drain of the transport's backlog.
const acceptBatchSize = 32

// Default accept-path pool sizes (Config.AcceptWorkers/AcceptBacklog).
const (
	defaultAcceptWorkers = 32
	defaultAcceptBacklog = 8 * defaultAcceptWorkers
)

// batchAccepter is the optional transport fast path (tcpnet.Listener
// implements it): drain up to len(dst) already-established connections
// without blocking, amortizing a scheduler wakeup over the whole burst.
type batchAccepter interface {
	AcceptBatch(dst []net.Conn) int
}

// NewListener wraps a transport listener (tcpnet or net) as a TCPLS
// listener and starts accepting.
func NewListener(inner net.Listener, cfg *Config) *Listener {
	if cfg.TLS == nil {
		cfg.TLS = &tls13.Config{}
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	workers := cfg.AcceptWorkers
	if workers <= 0 {
		workers = defaultAcceptWorkers
	}
	backlog := cfg.AcceptBacklog
	if backlog <= 0 {
		backlog = 8 * workers
	}
	l := &Listener{
		inner:   inner,
		cfg:     cfg,
		rt:      newServerRuntime(cfg),
		jitter:  newJitterRNG(cfg.RetrySeed),
		table:   newShardMap(cfg.Shards),
		workers: workers,
		pending: make(chan net.Conn, backlog),
		accepts: make(chan *Session, backlog),
		errs:    make(chan error, 1),
		closeCh: make(chan struct{}),
	}
	if acct := cfg.Accounting; acct != nil {
		acct.attachTracer(cfg.Tracer)
		acct.RegisterMetrics(cfg.Metrics)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Func("listener.accept_retries", func() int64 {
			return int64(l.acceptRetries.Load())
		})
		reg.Func("listener.queue_drops", func() int64 {
			return int64(l.queueDrops.Load())
		})
		reg.Func("listener.sessions", func() int64 {
			return int64(l.table.len())
		})
		reg.Func("listener.shard_max_sessions", func() int64 {
			maxN := 0
			for _, n := range l.table.shardCounts() {
				if n > maxN {
					maxN = n
				}
			}
			return int64(maxN)
		})
		l.rt.registerMetrics(reg)
	}
	for i := 0; i < workers; i++ {
		go l.handshakeWorker()
	}
	go l.acceptLoop()
	return l
}

// SteadyGoroutines reports the listener's constant goroutine overhead:
// the accept loop, the handshake worker pool, and the shared runtime's
// timer loop and event-loop workers. It is independent of the session
// count — each live session adds exactly one read-loop goroutine per
// path on top of this (the goroutine-budget regression tests assert
// the total exactly).
func (l *Listener) SteadyGoroutines() int {
	return 1 + l.workers + l.rt.steadyGoroutines()
}

// Accept returns the next new session (not JOINs — those attach to
// their session silently, firing the Join callback).
func (l *Listener) Accept() (*Session, error) {
	s, ok := <-l.accepts
	if !ok {
		select {
		case err := <-l.errs:
			return nil, err
		default:
			return nil, ErrSessionClosed
		}
	}
	return s, nil
}

// Close stops accepting; existing sessions keep running (and keep
// their shared timers: the runtime drains only after the last enrolled
// session ends).
func (l *Listener) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(l.closeCh)
	err := l.inner.Close()
	l.rt.shutdown()
	l.acceptMu.Lock()
	l.acceptsClosed = true
	close(l.accepts)
	l.acceptMu.Unlock()
	return err
}

// AcceptRetries reports how many temporary Accept errors the accept
// loop has backed off from and retried.
func (l *Listener) AcceptRetries() uint64 { return l.acceptRetries.Load() }

// QueueDrops reports connections closed pre-TLS because the handshake
// queue was full.
func (l *Listener) QueueDrops() uint64 { return l.queueDrops.Load() }

// Addr returns the transport listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Sessions snapshots the live sessions.
func (l *Listener) Sessions() []*Session { return l.table.snapshot() }

func (l *Listener) acceptLoop() {
	// The accept loop is the queue's only producer, so it alone may
	// close it: workers drain the residue and exit.
	defer close(l.pending)
	batcher, _ := l.inner.(batchAccepter)
	var batch [acceptBatchSize]net.Conn
	pol := l.cfg.Retry.withDefaults()
	attempt := 0
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			if l.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				// EMFILE-class pressure: the process is out of descriptors
				// (or the transport is momentarily saturated). Spinning
				// would burn CPU exactly when the process is starved, and
				// exiting would turn a transient condition into a dead
				// listener — back off exponentially with jitter and retry
				// for as long as the condition lasts.
				l.acceptRetries.Add(1)
				d := l.jitter.backoff(pol, min(attempt, 8))
				attempt++
				t := time.NewTimer(l.cfg.Clock.ScaleDuration(d))
				select {
				case <-t.C:
				case <-l.closeCh:
					t.Stop()
					return
				}
				continue
			}
			select {
			case l.errs <- err:
			default:
			}
			l.Close()
			return
		}
		attempt = 0
		l.enqueue(conn)
		// Batch drain: a flock arriving between wakeups is admitted and
		// queued in one pass instead of one scheduler round-trip each.
		for batcher != nil {
			n := batcher.AcceptBatch(batch[:])
			for i := 0; i < n; i++ {
				l.enqueue(batch[i])
				batch[i] = nil
			}
			if n < len(batch) {
				break
			}
		}
	}
}

// enqueue runs the pre-TLS admission gate and hands the connection to
// the handshake pool. Runs on the accept loop, so everything here is
// cheap: a few atomic loads and a channel send. The accounting
// invariant conns_seen == handshakes_started + rejected_pre_tls is
// preserved on every path out — a connection that passes admitConn but
// never reaches beginHandshake must be counted rejected.
func (l *Listener) enqueue(conn net.Conn) {
	acct := l.cfg.Accounting
	// Overload admission before any TLS work or queueing: a rejected
	// connection costs the server a few atomic loads and the client a
	// closed TCP connection — never a key schedule.
	if err := acct.admitConn(); err != nil {
		conn.Close()
		return
	}
	if l.closed.Load() {
		acct.rejectQueued()
		conn.Close()
		return
	}
	select {
	case l.pending <- conn:
	default:
		// Handshake pool saturated and the queue full: shed the newest
		// arrival pre-TLS. The client sees a closed TCP connection and
		// retries against a less loaded moment; the server never spent
		// key-schedule work on it.
		l.queueDrops.Add(1)
		acct.rejectQueued()
		conn.Close()
	}
}

// handshakeWorker serves queued connections until the queue closes.
func (l *Listener) handshakeWorker() {
	for conn := range l.pending {
		if l.closed.Load() {
			// Drained after Close: the conn passed the gate but no
			// handshake will run — count it out (see enqueue).
			l.cfg.Accounting.rejectQueued()
			conn.Close()
			continue
		}
		l.handleConn(conn)
	}
}

// handshakeResult carries the decision made while inspecting the
// ClientHello into the post-handshake phase.
type handshakeResult struct {
	hello   *record.ClientHelloTCPLS
	session *Session // join target (nil for new sessions)
	reply   *record.ServerTCPLS
}

func (l *Listener) handleConn(conn net.Conn) {
	hsStart := time.Now()
	acct := l.cfg.Accounting
	if err := acct.beginHandshake(); err != nil {
		conn.Close()
		return
	}
	res := &handshakeResult{}
	// A conn id minted during the handshake stays reserved until the
	// session is registered; every failure path in between must release
	// it or the id space slowly leaks.
	defer func() {
		if res.reply != nil && res.session == nil {
			l.releaseConnID(res.reply.ConnID)
		}
	}()
	tlsCfg := l.serverTLSConfig(conn, res)
	tc := tls13.Server(conn, tlsCfg)
	// Slowloris guard: a client that connects and then stalls (or
	// dribbles bytes) mid-handshake is cut off after the handshake
	// timeout instead of pinning this worker forever.
	timeout := l.cfg.Limits.withDefaults().HandshakeTimeout
	conn.SetDeadline(time.Now().Add(l.cfg.Clock.ScaleDuration(timeout)))
	err := tc.Handshake()
	acct.endHandshake()
	if err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	observeLatency(l.cfg.Metrics, l.cfg.Clock, "sessions.tls_handshake_ns", hsStart)
	if res.hello == nil || res.reply == nil {
		// Plain TLS client (no TCPLS extension). When degraded operation
		// is allowed, serve it anyway as a single-path plain session —
		// the client may be a TCPLS peer whose extension a middlebox
		// stripped and which fell back. Otherwise it is not a session.
		if l.cfg.AllowDegraded {
			l.acceptPlain(conn, tc)
			return
		}
		conn.Close()
		return
	}

	if res.session != nil {
		// JOIN: attach the path to the existing session.
		s := res.session
		pc := newPathConn(s, conn, tc)
		pc.joined = true
		if err := s.registerPath(pc); err != nil {
			return // registerPath closed the path
		}
		s.observePhase("handshake_ns.join", hsStart)
		if cb := s.cfg.Callbacks.Join; cb != nil {
			cb(pc.id, conn.RemoteAddr())
		}
		// A JOIN from the same host on a new port usually means a NAT
		// rebound the old mapping: re-validate suspect siblings now
		// instead of letting their health decay slowly.
		s.detectRebind(pc)
		// Replay any unacked data: the join may be a failover rescue.
		s.replayAll(pc)
		return
	}

	// New session.
	cfg := l.sessionConfig()
	s := newSession(RoleServer, cfg, nil)
	s.connID = res.reply.ConnID
	s.multipath = res.reply.Multipath
	for _, c := range res.reply.Cookies {
		s.issuedCookies[string(c)] = true
	}
	if err := acct.admitSession(s); err != nil {
		// Lost the admission race: concurrent handshakes filled the
		// session budget after this connection passed the pre-TLS gate.
		conn.Close()
		s.teardown(err)
		return
	}
	joinKey, err := deriveJoinKey(tc, s.connID)
	if err != nil {
		conn.Close()
		s.teardown(err)
		return
	}
	s.joinKey = joinKey
	l.table.insert(s.connID, s) // the session table owns the id now
	if l.closed.Load() {
		conn.Close()
		s.teardown(ErrSessionClosed) // removeSession hook clears the table entry
		return
	}
	s.emit(telemetry.Event{
		Kind: telemetry.EvSessionStart,
		A:    int64(s.connID),
		S:    "server",
	})
	pc := newPathConn(s, conn, tc)
	if err := s.registerPath(pc); err != nil {
		s.teardown(err)
		return
	}
	s.observePhase("handshake_ns.server", hsStart)
	l.deliver(s)
}

// deliver hands a ready session to Accept; the mutex makes delivery
// and Close's channel-close mutually exclusive (no send-on-closed).
func (l *Listener) deliver(s *Session) {
	l.acceptMu.Lock()
	if l.acceptsClosed {
		l.acceptMu.Unlock()
		s.teardown(ErrSessionClosed)
		return
	}
	select {
	case l.accepts <- s:
		l.acceptMu.Unlock()
	default:
		l.acceptMu.Unlock()
		s.teardown(errors.New("tcpls: accept backlog full"))
	}
}

// acceptPlain registers a completed plain-TLS handshake as a degraded
// single-path session and hands it to Accept like any other.
func (l *Listener) acceptPlain(conn net.Conn, tc *tls13.Conn) {
	if l.closed.Load() {
		conn.Close()
		return
	}
	cfg := l.sessionConfig()
	s := newSession(RoleServer, cfg, nil)
	if err := l.cfg.Accounting.admitSession(s); err != nil {
		conn.Close()
		s.teardown(err)
		return
	}
	s.emit(telemetry.Event{Kind: telemetry.EvSessionStart, S: "server-degraded"})
	if err := s.adoptPlain(conn, tc, "peer spoke plain TLS"); err != nil {
		s.teardown(err)
		return
	}
	l.deliver(s)
}

// serverTLSConfig builds the per-connection TLS config with the TCPLS
// extension logic: ClientHello inspection (JOIN validation) and the
// EncryptedExtensions payload (CONNID, cookies, addresses).
func (l *Listener) serverTLSConfig(conn net.Conn, res *handshakeResult) *tls13.Config {
	src := l.cfg.TLS
	cfg := &tls13.Config{
		Certificate:  src.Certificate,
		ALPN:         src.ALPN,
		CipherSuites: src.CipherSuites,
		MaxEarlyData: src.MaxEarlyData,
		TicketKey:    src.TicketKey,
		NumTickets:   src.NumTickets,
	}
	cfg.OnClientHello = func(info tls13.ClientHelloInfo) error {
		if info.TCPLS == nil {
			return nil // plain TLS; tolerated but not a session
		}
		hello, err := record.DecodeClientHelloTCPLS(info.TCPLS)
		if err != nil {
			return err
		}
		res.hello = hello
		if hello.Join == nil {
			return nil
		}
		// Figure 2 validation: the session must exist, the cookie must
		// be one we issued and still unused, and the binder must prove
		// possession of the session secret. The lookup touches exactly
		// one shard — JOIN storms never serialize the whole table — and
		// waits out the reservation window of a first handshake still
		// completing on a sibling worker.
		target := l.table.getLive(hello.Join.ConnID, time.Second)
		if target == nil {
			return ErrJoinRejected
		}
		// Reject before consuming the one-time cookie: a session at its
		// path budget keeps its cookies for legitimate failover rescues.
		// The server-wide path budget gets the same courtesy — a JOIN
		// refused for global overload must not burn the cookie it would
		// need once the pressure clears.
		if target.NumConns() >= target.limits.MaxPaths {
			return ErrJoinRejected
		}
		if acct := l.cfg.Accounting; !acct.hasPathCapacity() {
			return &OverloadError{Resource: "paths", Limit: int64(acct.budgets.MaxTotalPaths)}
		}
		target.mu.Lock()
		ok := target.issuedCookies[string(hello.Join.Cookie)]
		if ok {
			delete(target.issuedCookies, string(hello.Join.Cookie)) // one-time
		}
		joinKey := target.joinKey
		target.mu.Unlock()
		if !ok {
			return ErrJoinRejected
		}
		expect := joinBinder(joinKey, hello.Join.Cookie)
		if !hmac.Equal(expect, hello.Join.Binder) {
			return ErrJoinRejected
		}
		res.session = target
		return nil
	}
	cfg.EncryptedExtensions = func(info tls13.ClientHelloInfo) []tls13.Extension {
		if res.hello == nil {
			return nil
		}
		if res.session != nil {
			// JOIN reply: echo the CONNID and replenish cookies.
			fresh := [][]byte{randomCookie(), randomCookie()}
			res.session.mu.Lock()
			for _, c := range fresh {
				res.session.issuedCookies[string(c)] = true
			}
			res.session.mu.Unlock()
			res.reply = &record.ServerTCPLS{
				Version:   record.Version,
				ConnID:    res.session.connID,
				Cookies:   fresh,
				Multipath: res.session.multipath,
			}
			return []tls13.Extension{{Type: tls13.ExtTCPLS, Data: res.reply.Encode()}}
		}
		// New session: mint a CONNID and the cookie set; advertise the
		// configured addresses (the dual-stack case of §2.2).
		n := l.cfg.NumCookies
		if n == 0 {
			n = 8
		}
		if n > record.MaxHandshakeCookies {
			// A larger batch would be rejected by the peer's decoder.
			n = record.MaxHandshakeCookies
		}
		cookies := make([][]byte, n)
		for i := range cookies {
			cookies[i] = randomCookie()
		}
		var addrs []record.Advertisement
		for _, ap := range l.cfg.AdvertiseAddresses {
			addrs = append(addrs, record.Advertisement{Addr: ap.Addr(), Port: ap.Port()})
		}
		res.reply = &record.ServerTCPLS{
			Version:   record.Version,
			ConnID:    l.reserveConnID(),
			Cookies:   cookies,
			Addresses: addrs,
			Multipath: l.cfg.Multipath && res.hello.Multipath,
		}
		return []tls13.Extension{{Type: tls13.ExtTCPLS, Data: res.reply.Encode()}}
	}
	return cfg
}

// sessionConfig derives the per-session config from the listener's.
func (l *Listener) sessionConfig() *Config {
	cfg := *l.cfg
	cfg.onTeardown = l.removeSession
	cfg.runtime = l.rt
	return &cfg
}

// removeSession drops a dead session from the table — its conn id can
// then be reused and JOINs stop resolving to it. Installed as the
// session teardown hook; without it the table (and the id space) grows
// monotonically under connection churn.
func (l *Listener) removeSession(s *Session) {
	id := s.ConnID()
	if id == 0 {
		return // degraded plain session: never had a table entry
	}
	l.table.remove(id, s)
}

func newConnID() uint32 {
	c := randomCookie()
	return binary.BigEndian.Uint32(c[:4])
}

// pickConnID draws candidates from rnd until one is neither zero nor
// taken. A random uint32 birthday-collides well below the session
// counts a busy server holds, so minting without a liveness check
// would silently hijack an existing session's id.
func pickConnID(taken func(uint32) bool, rnd func() uint32) uint32 {
	for {
		id := rnd()
		if id != 0 && !taken(id) {
			return id
		}
	}
}

// reserveConnID mints a conn id that collides with neither the live
// session table nor another in-flight handshake, and holds it until
// the session registers (or releaseConnID on handshake failure).
func (l *Listener) reserveConnID() uint32 {
	return l.table.reserve(newConnID)
}

func (l *Listener) releaseConnID(id uint32) {
	l.table.release(id)
}

// replayAll resends every stream's unacked data on pc — the failover
// rescue path when a client reattaches after total connection loss.
func (s *Session) replayAll(pc *pathConn) {
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		st.replayUnacked(pc)
	}
}

// AdvertisedAddr is a helper constructing netip.AddrPort values.
func AdvertisedAddr(ip string, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr(ip), port)
}
