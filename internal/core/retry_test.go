package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/netsim"
)

// TestBackoffUnjittered pins the deterministic schedule: capped
// exponential growth from Base by Factor.
func TestBackoffUnjittered(t *testing.T) {
	p := RetryPolicy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Backoff(attempt, nil); got != w {
			t.Fatalf("attempt %d: %v, want %v", attempt, got, w)
		}
	}
}

// TestBackoffJitterBounds sweeps many seeds and attempts: every jittered
// backoff must stay within ±Jitter of the nominal value, never exceed
// Cap, and never go negative.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, Jitter: 0.5}
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for attempt := 0; attempt < 12; attempt++ {
			nominal := p.Backoff(attempt, nil)
			got := p.Backoff(attempt, rng)
			lo := time.Duration(float64(nominal) * (1 - p.Jitter))
			hi := time.Duration(float64(nominal) * (1 + p.Jitter))
			if hi > p.Cap {
				hi = p.Cap
			}
			if got < lo || got > hi {
				t.Fatalf("seed %d attempt %d: %v outside [%v, %v]", seed, attempt, got, lo, hi)
			}
			if got > p.Cap || got < 0 {
				t.Fatalf("seed %d attempt %d: %v violates cap/floor", seed, attempt, got)
			}
		}
	}
}

// TestBackoffSpreadsRetries: the point of jitter is decorrelating
// reconnection storms — distinct values must actually occur.
func TestBackoffSpreadsRetries(t *testing.T) {
	p := RetryPolicy{Jitter: 0.5}.withDefaults()
	rng := rand.New(rand.NewSource(7))
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		seen[p.Backoff(3, rng)] = true
	}
	if len(seen) < 16 {
		t.Fatalf("jitter produced only %d distinct backoffs in 64 draws", len(seen))
	}
}

// TestJitterRNGDeterministicBySeed: identical RetrySeed values replay an
// identical backoff sequence — the property reproducible chaos runs
// depend on.
func TestJitterRNGDeterministicBySeed(t *testing.T) {
	p := RetryPolicy{Jitter: 0.5}.withDefaults()
	a, b := newJitterRNG(42), newJitterRNG(42)
	c := newJitterRNG(43)
	same, diff := true, false
	for attempt := 0; attempt < 16; attempt++ {
		da, db, dc := a.backoff(p, attempt), b.backoff(p, attempt), c.backoff(p, attempt)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different backoff sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical sequences (rng ignored?)")
	}
}

// TestWithDefaultsClampsPathologicalPolicies: zero and out-of-range
// fields normalize instead of producing zero/negative sleeps or
// unbounded growth.
func TestWithDefaultsClampsPathologicalPolicies(t *testing.T) {
	for _, p := range []RetryPolicy{
		{},
		{Factor: 0.1, Jitter: 3},
		{Base: -time.Second, Cap: -time.Second, MaxAttempts: -4, Jitter: -1},
	} {
		d := p.withDefaults()
		if d.Base <= 0 || d.Cap < d.Base || d.Factor < 1 ||
			d.Jitter < 0 || d.Jitter >= 1 || d.MaxAttempts <= 0 || d.DialTimeout <= 0 {
			t.Fatalf("withDefaults left pathological policy: %+v -> %+v", p, d)
		}
	}
}

// TestSleepCancelableVirtualClock: backoffs run on the session clock —
// under a compressed netsim timescale a long virtual backoff completes
// in compressed wall time, and Close aborts a sleep immediately.
func TestSleepCancelableVirtualClock(t *testing.T) {
	n := netsim.New(netsim.WithTimeScale(0.001)) // 1s virtual = 1ms wall
	defer n.Close()
	s := newSession(RoleClient, &Config{Clock: n}, nil)

	start := time.Now()
	if !s.sleepCancelable(2 * time.Second) {
		t.Fatal("sleep reported cancellation on an open session")
	}
	if wall := time.Since(start); wall > 500*time.Millisecond {
		t.Fatalf("virtual 2s backoff took %v wall — clock not scaled", wall)
	}

	done := make(chan bool, 1)
	go func() { done <- s.sleepCancelable(30 * time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	s.teardown(nil)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("sleep survived session close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not interrupt the backoff")
	}
}
