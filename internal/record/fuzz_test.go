package record

import (
	"bytes"
	"net/netip"
	"testing"
)

// The fuzz targets below feed attacker-controlled bytes to every
// decoder that runs before or after peer authentication. Two invariants
// hold throughout: no input may panic the decoder, and any input the
// decoder accepts must survive an encode→decode round trip with a
// stable re-encoding (the decoded value is fully described by what the
// encoder can express).

func FuzzDecodeControl(f *testing.F) {
	f.Add(trimTType(EncodeControl(Ping{Seq: 1}, Pong{Seq: 1})))
	f.Add(trimTType(EncodeControl(
		Ack{StreamID: 3, Offset: 1 << 40},
		StreamOpen{StreamID: 5},
		StreamClose{StreamID: 5, FinalOffset: 9999},
		SessionClose{},
		ConnClose{ConnID: 2},
	)))
	f.Add(trimTType(EncodeControl(
		AddAddress{Addr: netip.MustParseAddr("10.0.0.9"), Port: 443, Primary: true},
		RemoveAddress{Addr: netip.MustParseAddr("fc00::9")},
		BPFCC{Name: "cubic", Bytecode: []byte{1, 2, 3}},
	)))
	f.Add([]byte{byte(FrameAck), 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		frames, err := DecodeControl(b)
		if err != nil {
			return
		}
		if len(frames) > MaxControlFrames {
			t.Fatalf("decoded %d frames past the cap", len(frames))
		}
		enc1 := trimTType(EncodeControl(frames...))
		again, err := DecodeControl(enc1)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		enc2 := trimTType(EncodeControl(again...))
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("unstable re-encoding:\n%x\n%x", enc1, enc2)
		}
	})
}

func FuzzDecodeClientHelloTCPLS(f *testing.F) {
	f.Add((&ClientHelloTCPLS{Version: Version, Multipath: true}).Encode())
	f.Add((&ClientHelloTCPLS{Version: Version, Join: &JoinRequest{
		ConnID: 77, Cookie: make([]byte, CookieLen), Binder: make([]byte, 32),
	}}).Encode())
	f.Add([]byte{1, 0, 1, 0, 0, 0, 1, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeClientHelloTCPLS(b)
		if err != nil {
			return
		}
		if j := h.Join; j != nil &&
			(len(j.Cookie) > MaxCookieFieldLen || len(j.Binder) > MaxCookieFieldLen) {
			t.Fatalf("oversized join fields survived: %d/%d", len(j.Cookie), len(j.Binder))
		}
		enc := h.Encode()
		again, err := DecodeClientHelloTCPLS(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, again.Encode()) {
			t.Fatal("unstable re-encoding")
		}
	})
}

func FuzzDecodeServerTCPLS(f *testing.F) {
	f.Add((&ServerTCPLS{Version: Version, ConnID: 42, Multipath: true,
		Cookies: [][]byte{make([]byte, CookieLen), make([]byte, CookieLen)},
		Addresses: []Advertisement{
			{Addr: netip.MustParseAddr("10.0.0.2"), Port: 443, Primary: true},
			{Addr: netip.MustParseAddr("fc00::2"), Port: 8443},
		}}).Encode())
	f.Add((&ServerTCPLS{Version: Version, ConnID: 1}).Encode())
	f.Add([]byte{1, 0, 0, 0, 0, 1, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeServerTCPLS(b)
		if err != nil {
			return
		}
		if len(s.Cookies) > MaxHandshakeCookies || len(s.Addresses) > MaxHandshakeAddresses {
			t.Fatalf("batch caps not enforced: %d cookies, %d addrs", len(s.Cookies), len(s.Addresses))
		}
		enc := s.Encode()
		again, err := DecodeServerTCPLS(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, again.Encode()) {
			t.Fatal("unstable re-encoding")
		}
	})
}

func FuzzDecodeStreamChunk(f *testing.F) {
	f.Add(trimTType(EncodeStreamChunk(&StreamChunk{StreamID: 1, Offset: 4096, Data: []byte("data")})))
	f.Add(trimTType(EncodeStreamChunk(&StreamChunk{StreamID: 9, Offset: 1 << 50, Fin: true})))
	f.Add(make([]byte, StreamHeaderLen-1))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeStreamChunk(b)
		if err != nil {
			return
		}
		again, err := DecodeStreamChunk(trimTType(EncodeStreamChunk(c)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.StreamID != c.StreamID || again.Offset != c.Offset ||
			again.Fin != c.Fin || !bytes.Equal(again.Data, c.Data) {
			t.Fatalf("round trip changed the chunk: %+v vs %+v", c, again)
		}
	})
}

func FuzzDecodeTCPOption(f *testing.F) {
	f.Add(trimTType(EncodeTCPOption(UserTimeoutOption(30e9))))
	f.Add(trimTType(EncodeTCPOption(&TCPOption{Kind: 254, Data: []byte{1, 2, 3}})))
	f.Add([]byte{28, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		o, err := DecodeTCPOption(b)
		if err != nil {
			return
		}
		again, err := DecodeTCPOption(trimTType(EncodeTCPOption(o)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != o.Kind || !bytes.Equal(again.Data, o.Data) {
			t.Fatalf("round trip changed the option: %+v vs %+v", o, again)
		}
	})
}

// trimTType strips the trailing true-type byte the encoders append, so
// encoder output can feed the content-level decoders.
func trimTType(b []byte) []byte { return b[:len(b)-1] }
