package record

import (
	"fmt"
	"sync/atomic"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

// String names the frame type for traces and pretty-printers.
func (t FrameType) String() string {
	switch t {
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameAck:
		return "ack"
	case FrameStreamOpen:
		return "stream_open"
	case FrameStreamClose:
		return "stream_close"
	case FrameAddAddress:
		return "add_address"
	case FrameRemoveAddress:
		return "remove_address"
	case FrameBPFCC:
		return "bpf_cc"
	case FrameSessionClose:
		return "session_close"
	case FrameConnClose:
		return "conn_close"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Type reports the control frame's wire type; the exported face of the
// unexported frameType used by the codec.
func Type(f Frame) FrameType { return f.frameType() }

// codecCounters aggregates codec activity stack-wide. The codec has no
// natural per-session handle (it is called from every path of every
// session), so the counters are package-level atomics, snapshotted into
// a registry on demand.
var codecCtr struct {
	recordsEncoded atomic.Uint64
	recordsDecoded atomic.Uint64
	bytesEncoded   atomic.Uint64
	bytesDecoded   atomic.Uint64
	framesEncoded  atomic.Uint64
	framesDecoded  atomic.Uint64
	decodeErrors   atomic.Uint64
}

// CodecStats is a point-in-time snapshot of codec activity.
type CodecStats struct {
	RecordsEncoded uint64
	RecordsDecoded uint64
	BytesEncoded   uint64
	BytesDecoded   uint64
	FramesEncoded  uint64
	FramesDecoded  uint64
	DecodeErrors   uint64
}

// Stats snapshots the package-wide codec counters.
func Stats() CodecStats {
	return CodecStats{
		RecordsEncoded: codecCtr.recordsEncoded.Load(),
		RecordsDecoded: codecCtr.recordsDecoded.Load(),
		BytesEncoded:   codecCtr.bytesEncoded.Load(),
		BytesDecoded:   codecCtr.bytesDecoded.Load(),
		FramesEncoded:  codecCtr.framesEncoded.Load(),
		FramesDecoded:  codecCtr.framesDecoded.Load(),
		DecodeErrors:   codecCtr.decodeErrors.Load(),
	}
}

// RegisterCodecMetrics exposes the codec counters under
// record.codec.* as pull-mode vars in reg.
func RegisterCodecMetrics(reg *telemetry.Registry) {
	reg.Func("record.codec.records_encoded", func() int64 { return int64(codecCtr.recordsEncoded.Load()) })
	reg.Func("record.codec.records_decoded", func() int64 { return int64(codecCtr.recordsDecoded.Load()) })
	reg.Func("record.codec.bytes_encoded", func() int64 { return int64(codecCtr.bytesEncoded.Load()) })
	reg.Func("record.codec.bytes_decoded", func() int64 { return int64(codecCtr.bytesDecoded.Load()) })
	reg.Func("record.codec.frames_encoded", func() int64 { return int64(codecCtr.framesEncoded.Load()) })
	reg.Func("record.codec.frames_decoded", func() int64 { return int64(codecCtr.framesDecoded.Load()) })
	reg.Func("record.codec.decode_errors", func() int64 { return int64(codecCtr.decodeErrors.Load()) })
}
