package record

import (
	"encoding/binary"
	"net/netip"
)

// This file encodes the TCPLS handshake-extension payloads of Figure 2:
// the client's transport parameter in the ClientHello (willingness to
// use TCPLS, or a JOIN proof on additional connections), and the
// server's EncryptedExtensions payload (CONNID, one-time cookies
// α0..αn, and the server's addresses — e.g. a dual-stack server
// advertising its IPv6 address over IPv4, §2.2).

// Version is the TCPLS protocol version advertised in the extension.
const Version uint8 = 1

// CookieLen is the length of the one-time JOIN cookies ("random
// 128-bits bitstrings sent as Encrypted Extensions", §4.1).
const CookieLen = 16

// Decoder hardening bounds: the handshake extension is parsed before
// the peer is authenticated, so every variable-length field is capped.
const (
	// MaxCookieFieldLen bounds a single cookie or binder field: cookies
	// are 16 bytes, binders are 32 (HMAC-SHA256); 64 leaves room for
	// future hashes without admitting attacker-sized blobs.
	MaxCookieFieldLen = 64
	// MaxHandshakeCookies bounds the cookie batch in one EE payload.
	MaxHandshakeCookies = 32
	// MaxHandshakeAddresses bounds the address advertisements in one EE
	// payload.
	MaxHandshakeAddresses = 32
)

// Hello kinds.
const (
	helloKindNew  uint8 = 0
	helloKindJoin uint8 = 1
)

// ClientHelloTCPLS is the client's TCPLS extension payload.
type ClientHelloTCPLS struct {
	Version uint8
	// Multipath advertises willingness to aggregate bandwidth across
	// TCP connections.
	Multipath bool
	// Join is non-nil on additional-connection handshakes (Figure 2).
	Join *JoinRequest
}

// JoinRequest attaches a new TCP connection to an existing session.
type JoinRequest struct {
	// ConnID is the session identifier the server handed out.
	ConnID uint32
	// Cookie is one of the server's one-time cookies.
	Cookie []byte
	// Binder authenticates the join: HMAC over the cookie keyed by a
	// secret derived from the session (a middlebox that saw the
	// original handshake cannot forge it — fixing the Multipath TCP
	// weakness of §4.1).
	Binder []byte
}

// Encode serializes the ClientHello payload.
func (h *ClientHelloTCPLS) Encode() []byte {
	b := []byte{h.Version}
	flags := uint8(0)
	if h.Multipath {
		flags |= 1
	}
	b = append(b, flags)
	if h.Join == nil {
		return append(b, helloKindNew)
	}
	b = append(b, helloKindJoin)
	b = binary.BigEndian.AppendUint32(b, h.Join.ConnID)
	b = append(b, byte(len(h.Join.Cookie)))
	b = append(b, h.Join.Cookie...)
	b = append(b, byte(len(h.Join.Binder)))
	b = append(b, h.Join.Binder...)
	return b
}

// DecodeClientHelloTCPLS parses the ClientHello payload.
func DecodeClientHelloTCPLS(b []byte) (*ClientHelloTCPLS, error) {
	if len(b) < 3 {
		return nil, ErrBadFrame
	}
	h := &ClientHelloTCPLS{Version: b[0], Multipath: b[1]&1 != 0}
	kind := b[2]
	rest := b[3:]
	if kind == helloKindNew {
		if len(rest) != 0 {
			return nil, ErrBadFrame
		}
		return h, nil
	}
	if kind != helloKindJoin || len(rest) < 5 {
		return nil, ErrBadFrame
	}
	j := &JoinRequest{ConnID: binary.BigEndian.Uint32(rest)}
	rest = rest[4:]
	n := int(rest[0])
	if n > MaxCookieFieldLen || len(rest) < 1+n+1 {
		return nil, ErrBadFrame
	}
	j.Cookie = rest[1 : 1+n]
	rest = rest[1+n:]
	m := int(rest[0])
	if m > MaxCookieFieldLen || len(rest) != 1+m {
		return nil, ErrBadFrame
	}
	j.Binder = rest[1:]
	h.Join = j
	return h, nil
}

// Advertisement is one server address in the EE payload.
type Advertisement struct {
	Addr    netip.Addr
	Port    uint16
	Primary bool
}

// ServerTCPLS is the server's EncryptedExtensions payload: everything
// the ServerHello+TCPLS(α0..αn) arrow of Figure 2 carries.
type ServerTCPLS struct {
	Version uint8
	// ConnID uniquely identifies this TCPLS session on the server.
	ConnID uint32
	// Cookies are one-time tokens for future JOINs.
	Cookies [][]byte
	// Addresses advertises the server's other endpoints (§2.2).
	Addresses []Advertisement
	// Multipath acknowledges the client's multipath request.
	Multipath bool
}

// Encode serializes the EE payload.
func (s *ServerTCPLS) Encode() []byte {
	b := []byte{s.Version}
	flags := uint8(0)
	if s.Multipath {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, s.ConnID)
	b = append(b, byte(len(s.Cookies)))
	for _, c := range s.Cookies {
		b = append(b, byte(len(c)))
		b = append(b, c...)
	}
	b = append(b, byte(len(s.Addresses)))
	for _, a := range s.Addresses {
		b = appendAddr(b, a.Addr)
		b = binary.BigEndian.AppendUint16(b, a.Port)
		if a.Primary {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeServerTCPLS parses the EE payload.
func DecodeServerTCPLS(b []byte) (*ServerTCPLS, error) {
	if len(b) < 7 {
		return nil, ErrBadFrame
	}
	s := &ServerTCPLS{Version: b[0], Multipath: b[1]&1 != 0, ConnID: binary.BigEndian.Uint32(b[2:])}
	rest := b[6:]
	nCookies := int(rest[0])
	if nCookies > MaxHandshakeCookies {
		return nil, ErrBadFrame
	}
	rest = rest[1:]
	for i := 0; i < nCookies; i++ {
		if len(rest) < 1 {
			return nil, ErrBadFrame
		}
		n := int(rest[0])
		if n > MaxCookieFieldLen || len(rest) < 1+n {
			return nil, ErrBadFrame
		}
		// Copy: cookies outlive the handshake buffer they arrived in.
		s.Cookies = append(s.Cookies, append([]byte(nil), rest[1:1+n]...))
		rest = rest[1+n:]
	}
	if len(rest) < 1 {
		return nil, ErrBadFrame
	}
	nAddrs := int(rest[0])
	if nAddrs > MaxHandshakeAddresses {
		return nil, ErrBadFrame
	}
	rest = rest[1:]
	for i := 0; i < nAddrs; i++ {
		addr, r, ok := parseAddr(rest)
		if !ok || len(r) < 3 {
			return nil, ErrBadFrame
		}
		s.Addresses = append(s.Addresses, Advertisement{
			Addr:    addr,
			Port:    binary.BigEndian.Uint16(r),
			Primary: r[2] == 1,
		})
		rest = r[3:]
	}
	if len(rest) != 0 {
		return nil, ErrBadFrame
	}
	return s, nil
}
