package record

import (
	"testing"

	"github.com/pluginized-protocols/gotcpls/internal/telemetry"
)

func TestFrameTypeString(t *testing.T) {
	cases := map[FrameType]string{
		FramePing:         "ping",
		FramePong:         "pong",
		FrameAck:          "ack",
		FrameStreamOpen:   "stream_open",
		FrameStreamClose:  "stream_close",
		FrameSessionClose: "session_close",
		FrameType(99):     "frame(99)",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
	if Type(Ping{}) != FramePing {
		t.Errorf("Type(Ping{}) = %v", Type(Ping{}))
	}
}

func TestCodecCounters(t *testing.T) {
	before := Stats()
	pt := Encode(TTypeAppData, []byte("hello"))
	if _, _, err := Decode(pt); err != nil {
		t.Fatal(err)
	}
	ctrl := EncodeControl(Ping{Seq: 1}, Pong{Seq: 1})
	if _, err := DecodeControl(ctrl[:len(ctrl)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeControl([]byte{0xff, 0x00, 0x00}); err == nil {
		t.Fatal("bad frame decoded without error")
	}
	after := Stats()
	if after.RecordsEncoded <= before.RecordsEncoded {
		t.Errorf("RecordsEncoded did not advance: %+v", after)
	}
	if after.FramesDecoded < before.FramesDecoded+2 {
		t.Errorf("FramesDecoded = %d, want >= %d", after.FramesDecoded, before.FramesDecoded+2)
	}
	if after.DecodeErrors <= before.DecodeErrors {
		t.Errorf("DecodeErrors did not advance: %+v", after)
	}

	reg := telemetry.NewRegistry()
	RegisterCodecMetrics(reg)
	snap := reg.Snapshot()
	if v, ok := snap["record.codec.records_encoded"].(int64); !ok || v < 1 {
		t.Errorf("record.codec.records_encoded = %v", snap["record.codec.records_encoded"])
	}
}
