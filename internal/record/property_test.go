package record

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// propertySeed returns the randomness seed for a property test and logs
// it so a failure can be replayed by hardcoding the value.
func propertySeed(t *testing.T) int64 {
	seed := time.Now().UnixNano()
	t.Logf("property seed: %d (set propertySeed to replay)", seed)
	return seed
}

func randAddr(rng *rand.Rand) netip.Addr {
	if rng.Intn(2) == 0 {
		var v4 [4]byte
		rng.Read(v4[:])
		return netip.AddrFrom4(v4)
	}
	var v16 [16]byte
	rng.Read(v16[:])
	return netip.AddrFrom16(v16)
}

func randFrame(rng *rand.Rand) Frame {
	switch rng.Intn(10) {
	case 0:
		return Ping{Seq: rng.Uint32()}
	case 1:
		return Pong{Seq: rng.Uint32()}
	case 2:
		return Ack{StreamID: rng.Uint32(), Offset: rng.Uint64()}
	case 3:
		return StreamOpen{StreamID: rng.Uint32()}
	case 4:
		return StreamClose{StreamID: rng.Uint32(), FinalOffset: rng.Uint64()}
	case 5:
		return AddAddress{Addr: randAddr(rng), Port: uint16(rng.Uint32()), Primary: rng.Intn(2) == 1}
	case 6:
		return RemoveAddress{Addr: randAddr(rng)}
	case 7:
		name := make([]byte, rng.Intn(32))
		for i := range name {
			name[i] = byte('a' + rng.Intn(26))
		}
		code := make([]byte, rng.Intn(256))
		rng.Read(code)
		return BPFCC{Name: string(name), Bytecode: code}
	case 8:
		return SessionClose{}
	default:
		return ConnClose{ConnID: rng.Uint32()}
	}
}

func framesEqual(a, b Frame) bool {
	x, ok := a.(BPFCC)
	if !ok {
		return a == b
	}
	y, ok := b.(BPFCC)
	return ok && x.Name == y.Name && bytes.Equal(x.Bytecode, y.Bytecode)
}

// TestControlRoundTripProperty: Decode(Encode(frames)) must return the
// same frames for any generated batch.
func TestControlRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed(t)))
	for iter := 0; iter < 500; iter++ {
		in := make([]Frame, 1+rng.Intn(8))
		for i := range in {
			in[i] = randFrame(rng)
		}
		plaintext := EncodeControl(in...)
		tt, content, err := Decode(plaintext)
		if err != nil || tt != TTypeControl {
			t.Fatalf("iter %d: Decode: tt=%d err=%v", iter, tt, err)
		}
		out, err := DecodeControl(content)
		if err != nil {
			t.Fatalf("iter %d: DecodeControl(%v): %v", iter, in, err)
		}
		if len(out) != len(in) {
			t.Fatalf("iter %d: %d frames decoded, want %d", iter, len(out), len(in))
		}
		for i := range in {
			if !framesEqual(in[i], out[i]) {
				t.Fatalf("iter %d frame %d: got %#v, want %#v", iter, i, out[i], in[i])
			}
		}
	}
}

// TestStreamChunkRoundTripProperty: header fields and payload must
// survive EncodeStreamChunk → Decode → DecodeStreamChunk for any chunk.
func TestStreamChunkRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed(t)))
	for iter := 0; iter < 500; iter++ {
		in := &StreamChunk{
			StreamID: rng.Uint32(),
			Offset:   rng.Uint64(),
			Fin:      rng.Intn(2) == 1,
			Data:     make([]byte, rng.Intn(4096)),
		}
		rng.Read(in.Data)
		tt, content, err := Decode(EncodeStreamChunk(in))
		if err != nil || tt != TTypeStreamData {
			t.Fatalf("iter %d: Decode: tt=%d err=%v", iter, tt, err)
		}
		out, err := DecodeStreamChunk(content)
		if err != nil {
			t.Fatalf("iter %d: DecodeStreamChunk: %v", iter, err)
		}
		if out.StreamID != in.StreamID || out.Offset != in.Offset || out.Fin != in.Fin || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("iter %d: got %+v, want %+v", iter, out, in)
		}
	}
}

// TestTCPOptionRoundTripProperty: options of any size must round-trip,
// and the decoded Data must not alias the input buffer.
func TestTCPOptionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed(t)))
	for iter := 0; iter < 500; iter++ {
		in := &TCPOption{Kind: uint8(rng.Uint32()), Data: make([]byte, rng.Intn(512))}
		rng.Read(in.Data)
		tt, content, err := Decode(EncodeTCPOption(in))
		if err != nil || tt != TTypeTCPOption {
			t.Fatalf("iter %d: Decode: tt=%d err=%v", iter, tt, err)
		}
		out, err := DecodeTCPOption(content)
		if err != nil {
			t.Fatalf("iter %d: DecodeTCPOption: %v", iter, err)
		}
		if out.Kind != in.Kind || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("iter %d: got %+v, want %+v", iter, out, in)
		}
		if len(content) > 3 && len(out.Data) > 0 {
			content[3] ^= 0xFF // mutate the record buffer
			if out.Data[0] == content[3] {
				t.Fatalf("iter %d: decoded option data aliases the record buffer", iter)
			}
			content[3] ^= 0xFF
		}
	}
}
