package record

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestTTypeRoundTrip(t *testing.T) {
	for _, tt := range []TType{TTypeAppData, TTypeControl, TTypeStreamData, TTypeTCPOption} {
		enc := Encode(tt, []byte("payload"))
		got, payload, err := Decode(enc)
		if err != nil || got != tt || string(payload) != "payload" {
			t.Fatalf("ttype %d: %v %q %v", tt, got, payload, err)
		}
	}
	if _, _, err := Decode(nil); err != ErrEmpty {
		t.Fatal("empty record accepted")
	}
}

// TestFigure1Layout pins the byte layout of the record in Figure 1: a
// User Timeout TCP option whose true type (TCP_OPTION) is the last
// plaintext byte, invisible before decryption.
func TestFigure1Layout(t *testing.T) {
	opt := UserTimeoutOption(30 * time.Second)
	rec := EncodeTCPOption(opt)
	// [kind][len hi][len lo][payload...][TType]
	if rec[0] != 28 {
		t.Fatalf("option kind byte = %d, want 28 (User Timeout)", rec[0])
	}
	if rec[len(rec)-1] != byte(TTypeTCPOption) {
		t.Fatalf("TType trailer = %d", rec[len(rec)-1])
	}
	tt, content, err := Decode(rec)
	if err != nil || tt != TTypeTCPOption {
		t.Fatal(err)
	}
	got, err := DecodeTCPOption(content)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got.UserTimeout()
	if !ok || d != 30*time.Second {
		t.Fatalf("uto = %v %v", d, ok)
	}
}

func TestStreamChunkRoundTrip(t *testing.T) {
	c := &StreamChunk{StreamID: 7, Offset: 1 << 40, Fin: true, Data: []byte("abc")}
	enc := EncodeStreamChunk(c)
	tt, content, err := Decode(enc)
	if err != nil || tt != TTypeStreamData {
		t.Fatal(err)
	}
	got, err := DecodeStreamChunk(content)
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamID != 7 || got.Offset != 1<<40 || !got.Fin || string(got.Data) != "abc" {
		t.Fatalf("%+v", got)
	}
	if _, err := DecodeStreamChunk([]byte{1, 2}); err == nil {
		t.Fatal("short chunk accepted")
	}
}

func TestControlFramesRoundTrip(t *testing.T) {
	v6 := netip.MustParseAddr("fc00::2")
	v4 := netip.MustParseAddr("192.0.2.1")
	frames := []Frame{
		Ping{},
		Pong{},
		Ack{StreamID: 3, Offset: 123456789},
		StreamOpen{StreamID: 5},
		StreamClose{StreamID: 5, FinalOffset: 999},
		AddAddress{Addr: v6, Port: 443, Primary: true},
		AddAddress{Addr: v4, Port: 8443},
		RemoveAddress{Addr: v4},
		BPFCC{Name: "aimd", Bytecode: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		SessionClose{},
		ConnClose{ConnID: 42},
	}
	enc := EncodeControl(frames...)
	tt, content, err := Decode(enc)
	if err != nil || tt != TTypeControl {
		t.Fatal(err)
	}
	got, err := DecodeControl(content)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("%d frames, want %d", len(got), len(frames))
	}
	if a := got[2].(Ack); a.StreamID != 3 || a.Offset != 123456789 {
		t.Fatalf("ack: %+v", a)
	}
	if a := got[5].(AddAddress); a.Addr != v6 || a.Port != 443 || !a.Primary {
		t.Fatalf("addaddr: %+v", a)
	}
	if a := got[6].(AddAddress); a.Addr != v4 || a.Primary {
		t.Fatalf("addaddr4: %+v", a)
	}
	if r := got[7].(RemoveAddress); r.Addr != v4 {
		t.Fatalf("rmaddr: %+v", r)
	}
	if b := got[8].(BPFCC); b.Name != "aimd" || len(b.Bytecode) != 8 {
		t.Fatalf("bpf: %+v", b)
	}
	if c := got[10].(ConnClose); c.ConnID != 42 {
		t.Fatalf("connclose: %+v", c)
	}
}

func TestControlFrameErrors(t *testing.T) {
	bad := [][]byte{
		{1},                                 // truncated header
		{99, 0, 0},                          // unknown type
		{byte(FrameAck), 0, 4, 1, 2, 3, 4},  // wrong ack length
		{byte(FrameAddAddress), 0, 2, 9, 9}, // bad family
		{byte(FrameBPFCC), 0, 1, 5},         // name overruns
		{byte(FrameStreamOpen), 0, 8, 0, 0, 0, 0, 0, 0, 0, 0}, // wrong len
	}
	for i, b := range bad {
		if _, err := DecodeControl(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestClientHelloTCPLSRoundTrip(t *testing.T) {
	h := &ClientHelloTCPLS{Version: Version, Multipath: true}
	got, err := DecodeClientHelloTCPLS(h.Encode())
	if err != nil || got.Version != Version || !got.Multipath || got.Join != nil {
		t.Fatalf("%+v %v", got, err)
	}
	j := &ClientHelloTCPLS{
		Version: Version,
		Join: &JoinRequest{
			ConnID: 0xdeadbeef,
			Cookie: bytes.Repeat([]byte{0xaa}, CookieLen),
			Binder: bytes.Repeat([]byte{0xbb}, 32),
		},
	}
	got, err = DecodeClientHelloTCPLS(j.Encode())
	if err != nil || got.Join == nil {
		t.Fatal(err)
	}
	if got.Join.ConnID != 0xdeadbeef || len(got.Join.Cookie) != CookieLen || len(got.Join.Binder) != 32 {
		t.Fatalf("%+v", got.Join)
	}
	if _, err := DecodeClientHelloTCPLS([]byte{1}); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestServerTCPLSRoundTrip(t *testing.T) {
	s := &ServerTCPLS{
		Version:   Version,
		ConnID:    77,
		Multipath: true,
		Cookies:   [][]byte{bytes.Repeat([]byte{1}, 16), bytes.Repeat([]byte{2}, 16)},
		Addresses: []Advertisement{
			{Addr: netip.MustParseAddr("10.0.0.2"), Port: 443, Primary: true},
			{Addr: netip.MustParseAddr("fc00::2"), Port: 443},
		},
	}
	got, err := DecodeServerTCPLS(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ConnID != 77 || !got.Multipath || len(got.Cookies) != 2 || len(got.Addresses) != 2 {
		t.Fatalf("%+v", got)
	}
	if got.Addresses[1].Addr != netip.MustParseAddr("fc00::2") {
		t.Fatalf("v6 addr: %v", got.Addresses[1].Addr)
	}
	if !got.Addresses[0].Primary || got.Addresses[1].Primary {
		t.Fatal("primary flags")
	}
	// Truncations rejected.
	enc := s.Encode()
	for _, n := range []int{1, 5, 8, len(enc) - 1} {
		if _, err := DecodeServerTCPLS(enc[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

// Property: control frames survive a round trip for arbitrary ack and
// stream values.
func TestFrameProperty(t *testing.T) {
	f := func(sid uint32, off uint64, connID uint32) bool {
		enc := EncodeControl(Ack{sid, off}, StreamClose{sid, off}, ConnClose{connID})
		_, content, err := Decode(enc)
		if err != nil {
			return false
		}
		frames, err := DecodeControl(content)
		if err != nil || len(frames) != 3 {
			return false
		}
		a := frames[0].(Ack)
		sc := frames[1].(StreamClose)
		cc := frames[2].(ConnClose)
		return a.StreamID == sid && a.Offset == off &&
			sc.StreamID == sid && sc.FinalOffset == off && cc.ConnID == connID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stream chunks round-trip.
func TestStreamChunkProperty(t *testing.T) {
	f := func(sid uint32, off uint64, fin bool, data []byte) bool {
		enc := EncodeStreamChunk(&StreamChunk{sid, off, fin, data})
		_, content, err := Decode(enc)
		if err != nil {
			return false
		}
		c, err := DecodeStreamChunk(content)
		return err == nil && c.StreamID == sid && c.Offset == off &&
			c.Fin == fin && bytes.Equal(c.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
