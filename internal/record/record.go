// Package record implements TCPLS's record semantics on top of the TLS
// 1.3 record layer: the hidden "true type" (TType) of Figure 1, the
// control-channel frames that ride it (TCP options, TCPLS acks, address
// advertisement, eBPF programs, stream and session control), and the
// codecs for the TCPLS handshake-extension payloads of Figure 2.
//
// Figure 1's trick: every TCPLS record travels as an ordinary TLS
// application-data record — outer content type 23, inner content type 23
// — and the REAL type is one encrypted byte at the very end of the
// payload. A middlebox (or a censor fingerprinting message types) sees
// nothing but application data; the paper calls this "a reasonable
// approach to designing extensibility mechanisms in today's Internet".
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/wire"
)

// TType is the true TCPLS record type, hidden at the end of the
// encrypted payload (Figure 1).
type TType uint8

// TCPLS record types.
const (
	// TTypeAppData is ordinary application data on the default context.
	TTypeAppData TType = 0
	// TTypeControl carries a batch of control frames.
	TTypeControl TType = 1
	// TTypeStreamData carries one stream-data chunk with its TCPLS
	// sequence number (multipath reordering + failover replay, §2.1).
	TTypeStreamData TType = 2
	// TTypeTCPOption carries one TCP option through the encrypted
	// channel (§3.1, the record Figure 1 depicts).
	TTypeTCPOption TType = 3
)

// Errors.
var (
	ErrEmpty    = errors.New("record: empty TCPLS record")
	ErrBadFrame = errors.New("record: malformed frame")
)

// Encode appends the TType trailer to payload, producing the plaintext
// handed to the TLS record protection.
func Encode(t TType, payload []byte) []byte {
	codecCtr.recordsEncoded.Add(1)
	codecCtr.bytesEncoded.Add(uint64(len(payload)))
	out := make([]byte, 0, len(payload)+1)
	out = append(out, payload...)
	return append(out, byte(t))
}

// Decode splits a decrypted TLS record payload into TType and content.
func Decode(plaintext []byte) (TType, []byte, error) {
	if len(plaintext) == 0 {
		codecCtr.decodeErrors.Add(1)
		return 0, nil, ErrEmpty
	}
	codecCtr.recordsDecoded.Add(1)
	codecCtr.bytesDecoded.Add(uint64(len(plaintext) - 1))
	return TType(plaintext[len(plaintext)-1]), plaintext[:len(plaintext)-1], nil
}

// --- stream data records ---

// StreamHeaderLen is the fixed stream-data header size.
const StreamHeaderLen = 4 + 8 + 1

// StreamChunk is one stream-data record body.
type StreamChunk struct {
	StreamID uint32
	// Offset is the TCPLS sequence number: the byte offset of Data in
	// the stream. It lets the receiver reorder across TCP connections
	// (multipath) and deduplicate replays (failover).
	Offset uint64
	// Fin marks the end of the stream; Data may be empty.
	Fin  bool
	Data []byte
}

// PutStreamHeader writes the chunk's 13-byte stream-data header into b,
// which must hold at least StreamHeaderLen bytes. The hot send path
// hands this header and the chunk data to the record protection as
// separate parts (tls13.WriteRecordParts), so the plaintext is only
// ever assembled inside the sealed-record buffer.
func PutStreamHeader(b []byte, c *StreamChunk) {
	_ = b[StreamHeaderLen-1]
	binary.BigEndian.PutUint32(b[0:], c.StreamID)
	binary.BigEndian.PutUint64(b[4:], c.Offset)
	if c.Fin {
		b[12] = 1
	} else {
		b[12] = 0
	}
}

// EncodeStreamChunk builds the full TCPLS plaintext for a chunk.
func EncodeStreamChunk(c *StreamChunk) []byte {
	out := make([]byte, StreamHeaderLen, StreamHeaderLen+len(c.Data)+1)
	PutStreamHeader(out, c)
	out = append(out, c.Data...)
	return append(out, byte(TTypeStreamData))
}

// DecodeStreamChunk parses a stream-data record content (without TType).
// Data aliases b: on the receive path the decrypted record buffer's
// ownership travels with the chunk, and the stream layer copies once at
// the Stream.Read API boundary before recycling the buffer.
func DecodeStreamChunk(b []byte) (*StreamChunk, error) {
	if len(b) < StreamHeaderLen {
		return nil, ErrBadFrame
	}
	return &StreamChunk{
		StreamID: binary.BigEndian.Uint32(b[0:]),
		Offset:   binary.BigEndian.Uint64(b[4:]),
		Fin:      b[12] == 1,
		Data:     b[StreamHeaderLen:],
	}, nil
}

// --- TCP option records (§3.1, Figure 1) ---

// TCPOption is a TCP option shipped over the secure channel. Unlike the
// 40-byte cleartext header, the record can carry options of any size,
// and middleboxes cannot see or strip them.
type TCPOption struct {
	Kind uint8
	Data []byte
}

// EncodeTCPOption builds the full TCPLS plaintext for a TCP option
// record — the exact record Figure 1 shows for User Timeout.
func EncodeTCPOption(o *TCPOption) []byte {
	out := make([]byte, 0, 3+len(o.Data)+1)
	out = append(out, o.Kind)
	out = binary.BigEndian.AppendUint16(out, uint16(len(o.Data)))
	out = append(out, o.Data...)
	return append(out, byte(TTypeTCPOption))
}

// DecodeTCPOption parses a TCP option record content. Data is copied
// out of b ("no input aliasing"): option callbacks may retain it while
// the record buffer is recycled.
func DecodeTCPOption(b []byte) (*TCPOption, error) {
	if len(b) < 3 {
		return nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if len(b) != 3+n {
		return nil, ErrBadFrame
	}
	return &TCPOption{Kind: b[0], Data: append([]byte(nil), b[3:]...)}, nil
}

// UserTimeoutOption builds the RFC 5482 option for the secure channel.
func UserTimeoutOption(d time.Duration) *TCPOption {
	o := wire.UserTimeoutOption(d)
	return &TCPOption{Kind: o.Kind, Data: o.Data}
}

// UserTimeout decodes an RFC 5482 user-timeout option.
func (o *TCPOption) UserTimeout() (time.Duration, bool) {
	w := wire.Option{Kind: o.Kind, Data: o.Data}
	return w.UserTimeout()
}

// --- control frames ---

// FrameType identifies a control frame.
type FrameType uint8

// Control frame types.
const (
	FramePing FrameType = iota + 1
	FramePong
	FrameAck           // cumulative TCPLS ack for one stream
	FrameStreamOpen    // sender will use this stream id
	FrameStreamClose   // no more data after FinalOffset
	FrameAddAddress    // advertise an address (the paper's §2.2 example)
	FrameRemoveAddress // withdraw an address
	FrameBPFCC         // eBPF congestion-control program (§3(iii))
	FrameSessionClose  // secure session termination (§2.1)
	FrameConnClose     // orderly close of one TCP connection
)

// Frame is one control frame.
type Frame interface {
	frameType() FrameType
	encodeBody(b []byte) []byte
}

// Ping elicits a Pong (used for path liveness probing). Seq matches the
// answering Pong to its probe so the session layer can measure per-path
// RTT and count unanswered probes — the health signal behind proactive
// failover.
type Ping struct{ Seq uint32 }

// Pong answers a Ping, echoing its Seq.
type Pong struct{ Seq uint32 }

// Ack acknowledges contiguous stream bytes below Offset, enabling the
// sender to drop its replay buffer (§2.1 failover).
type Ack struct {
	StreamID uint32
	Offset   uint64
}

// StreamOpen announces a stream id before first data.
type StreamOpen struct {
	StreamID uint32
}

// StreamClose announces the final offset of a stream.
type StreamClose struct {
	StreamID    uint32
	FinalOffset uint64
}

// AddAddress advertises an endpoint address over the encrypted channel —
// the dual-stack server advertising its IPv6 address of §2.2, and the
// encrypted ADD_ADDR of §4.1.
type AddAddress struct {
	Addr    netip.Addr
	Port    uint16
	Primary bool
}

// RemoveAddress withdraws an advertised address.
type RemoveAddress struct {
	Addr netip.Addr
}

// BPFCC carries an eBPF congestion-control program (§3(iii), §4.3).
type BPFCC struct {
	Name     string
	Bytecode []byte
}

// SessionClose terminates the whole TCPLS session securely: unlike a
// cleartext FIN or RST it cannot be forged by a middlebox.
type SessionClose struct{}

// ConnClose asks the peer to tear down one TCP connection gracefully
// (used during application-level migration, §3.2).
type ConnClose struct {
	ConnID uint32
}

func (Ping) frameType() FrameType          { return FramePing }
func (Pong) frameType() FrameType          { return FramePong }
func (Ack) frameType() FrameType           { return FrameAck }
func (StreamOpen) frameType() FrameType    { return FrameStreamOpen }
func (StreamClose) frameType() FrameType   { return FrameStreamClose }
func (AddAddress) frameType() FrameType    { return FrameAddAddress }
func (RemoveAddress) frameType() FrameType { return FrameRemoveAddress }
func (BPFCC) frameType() FrameType         { return FrameBPFCC }
func (SessionClose) frameType() FrameType  { return FrameSessionClose }
func (ConnClose) frameType() FrameType     { return FrameConnClose }

func (f Ping) encodeBody(b []byte) []byte { return binary.BigEndian.AppendUint32(b, f.Seq) }
func (f Pong) encodeBody(b []byte) []byte { return binary.BigEndian.AppendUint32(b, f.Seq) }

func (f Ack) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, f.StreamID)
	return binary.BigEndian.AppendUint64(b, f.Offset)
}

func (f StreamOpen) encodeBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, f.StreamID)
}

func (f StreamClose) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, f.StreamID)
	return binary.BigEndian.AppendUint64(b, f.FinalOffset)
}

func appendAddr(b []byte, a netip.Addr) []byte {
	if a.Is4() {
		b = append(b, 4)
		v := a.As4()
		return append(b, v[:]...)
	}
	b = append(b, 6)
	v := a.As16()
	return append(b, v[:]...)
}

func parseAddr(b []byte) (netip.Addr, []byte, bool) {
	if len(b) < 1 {
		return netip.Addr{}, nil, false
	}
	switch b[0] {
	case 4:
		if len(b) < 5 {
			return netip.Addr{}, nil, false
		}
		return netip.AddrFrom4([4]byte(b[1:5])), b[5:], true
	case 6:
		if len(b) < 17 {
			return netip.Addr{}, nil, false
		}
		return netip.AddrFrom16([16]byte(b[1:17])), b[17:], true
	}
	return netip.Addr{}, nil, false
}

func (f AddAddress) encodeBody(b []byte) []byte {
	b = appendAddr(b, f.Addr)
	b = binary.BigEndian.AppendUint16(b, f.Port)
	if f.Primary {
		return append(b, 1)
	}
	return append(b, 0)
}

func (f RemoveAddress) encodeBody(b []byte) []byte {
	return appendAddr(b, f.Addr)
}

func (f BPFCC) encodeBody(b []byte) []byte {
	b = append(b, byte(len(f.Name)))
	b = append(b, f.Name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Bytecode)))
	return append(b, f.Bytecode...)
}

func (SessionClose) encodeBody(b []byte) []byte { return b }

func (f ConnClose) encodeBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, f.ConnID)
}

// AppendControl packs frames into one control-record plaintext
// (including the TType trailer), appending to b. Frame bodies are
// encoded in place with their length prefix backfilled, so a caller
// supplying a pooled buffer pays no intermediate allocations.
func AppendControl(b []byte, frames ...Frame) []byte {
	codecCtr.framesEncoded.Add(uint64(len(frames)))
	for _, f := range frames {
		b = append(b, byte(f.frameType()), 0, 0)
		lenAt := len(b) - 2
		b = f.encodeBody(b)
		binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-lenAt-2))
	}
	return append(b, byte(TTypeControl))
}

// EncodeControl packs frames into one control-record plaintext
// (including the TType trailer).
func EncodeControl(frames ...Frame) []byte {
	return AppendControl(nil, frames...)
}

// MaxControlFrames caps how many frames one control record may carry.
// Frames can be as small as three bytes, so without a cap a single
// max-size record decodes into thousands of allocations; no legitimate
// sender batches anywhere near this many.
const MaxControlFrames = 512

// DecodeControl parses a control-record content (without TType) into
// frames.
func DecodeControl(b []byte) ([]Frame, error) {
	var frames []Frame
	for len(b) > 0 {
		if len(frames) >= MaxControlFrames {
			codecCtr.decodeErrors.Add(1)
			return nil, fmt.Errorf("%w: more than %d frames in one record", ErrBadFrame, MaxControlFrames)
		}
		if len(b) < 3 {
			codecCtr.decodeErrors.Add(1)
			return nil, ErrBadFrame
		}
		ft := FrameType(b[0])
		n := int(binary.BigEndian.Uint16(b[1:]))
		if len(b) < 3+n {
			codecCtr.decodeErrors.Add(1)
			return nil, ErrBadFrame
		}
		body := b[3 : 3+n]
		b = b[3+n:]
		f, err := decodeFrame(ft, body)
		if err != nil {
			codecCtr.decodeErrors.Add(1)
			return nil, err
		}
		frames = append(frames, f)
	}
	codecCtr.framesDecoded.Add(uint64(len(frames)))
	return frames, nil
}

func decodeFrame(ft FrameType, body []byte) (Frame, error) {
	switch ft {
	case FramePing:
		// A zero-length body is a legacy liveness ping (Seq 0).
		switch len(body) {
		case 0:
			return Ping{}, nil
		case 4:
			return Ping{binary.BigEndian.Uint32(body)}, nil
		}
		return nil, ErrBadFrame
	case FramePong:
		switch len(body) {
		case 0:
			return Pong{}, nil
		case 4:
			return Pong{binary.BigEndian.Uint32(body)}, nil
		}
		return nil, ErrBadFrame
	case FrameAck:
		if len(body) != 12 {
			return nil, ErrBadFrame
		}
		return Ack{binary.BigEndian.Uint32(body), binary.BigEndian.Uint64(body[4:])}, nil
	case FrameStreamOpen:
		if len(body) != 4 {
			return nil, ErrBadFrame
		}
		return StreamOpen{binary.BigEndian.Uint32(body)}, nil
	case FrameStreamClose:
		if len(body) != 12 {
			return nil, ErrBadFrame
		}
		return StreamClose{binary.BigEndian.Uint32(body), binary.BigEndian.Uint64(body[4:])}, nil
	case FrameAddAddress:
		addr, rest, ok := parseAddr(body)
		if !ok || len(rest) != 3 {
			return nil, ErrBadFrame
		}
		return AddAddress{addr, binary.BigEndian.Uint16(rest), rest[2] == 1}, nil
	case FrameRemoveAddress:
		addr, rest, ok := parseAddr(body)
		if !ok || len(rest) != 0 {
			return nil, ErrBadFrame
		}
		return RemoveAddress{addr}, nil
	case FrameBPFCC:
		if len(body) < 1 {
			return nil, ErrBadFrame
		}
		nameLen := int(body[0])
		if len(body) < 1+nameLen+4 {
			return nil, ErrBadFrame
		}
		name := string(body[1 : 1+nameLen])
		progLen := int(binary.BigEndian.Uint32(body[1+nameLen:]))
		rest := body[1+nameLen+4:]
		if len(rest) != progLen {
			return nil, ErrBadFrame
		}
		// Copy the bytecode ("no input aliasing"): the CC plugin
		// retains it long after the record buffer is recycled.
		return BPFCC{name, append([]byte(nil), rest...)}, nil
	case FrameSessionClose:
		return SessionClose{}, nil
	case FrameConnClose:
		if len(body) != 4 {
			return nil, ErrBadFrame
		}
		return ConnClose{binary.BigEndian.Uint32(body)}, nil
	}
	return nil, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, ft)
}
