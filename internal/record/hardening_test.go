package record

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
)

// TestControlFrameFloodRejected: one record packed with thousands of
// minimal frames must be rejected, not decoded into an allocation storm.
func TestControlFrameFloodRejected(t *testing.T) {
	var b []byte
	for i := 0; i < MaxControlFrames+1; i++ {
		b = append(b, byte(FrameSessionClose), 0, 0)
	}
	if _, err := DecodeControl(b); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("flood decoded: err = %v", err)
	}
	// Exactly at the cap still decodes.
	b = b[:MaxControlFrames*3]
	frames, err := DecodeControl(b)
	if err != nil || len(frames) != MaxControlFrames {
		t.Fatalf("cap-sized batch rejected: %d frames, err %v", len(frames), err)
	}
}

// TestJoinOversizedFieldsRejected: cookie/binder fields above the cap
// are attacker-sized blobs, not protocol data.
func TestJoinOversizedFieldsRejected(t *testing.T) {
	big := make([]byte, 200)
	h := &ClientHelloTCPLS{Version: Version, Join: &JoinRequest{
		ConnID: 7, Cookie: big, Binder: big,
	}}
	if _, err := DecodeClientHelloTCPLS(h.Encode()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized join fields decoded: err = %v", err)
	}
	// Legitimate sizes round-trip.
	h.Join.Cookie = make([]byte, CookieLen)
	h.Join.Binder = make([]byte, 32)
	got, err := DecodeClientHelloTCPLS(h.Encode())
	if err != nil || got.Join == nil || len(got.Join.Cookie) != CookieLen {
		t.Fatalf("legit join rejected: %+v, err %v", got, err)
	}
}

// TestServerExtBatchCapsRejected: cookie and address counts above the
// decoder caps are rejected up front.
func TestServerExtBatchCapsRejected(t *testing.T) {
	s := &ServerTCPLS{Version: Version, ConnID: 1}
	for i := 0; i < MaxHandshakeCookies+1; i++ {
		s.Cookies = append(s.Cookies, make([]byte, CookieLen))
	}
	if _, err := DecodeServerTCPLS(s.Encode()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized cookie batch decoded: err = %v", err)
	}

	s = &ServerTCPLS{Version: Version, ConnID: 1}
	for i := 0; i < MaxHandshakeAddresses+1; i++ {
		s.Addresses = append(s.Addresses, Advertisement{Addr: netip.MustParseAddr("192.0.2.1"), Port: 443})
	}
	if _, err := DecodeServerTCPLS(s.Encode()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized address batch decoded: err = %v", err)
	}
}

// TestServerExtCookiesDoNotAliasInput: decoded cookies are stored for
// the session's lifetime and must not pin (or be mutated through) the
// handshake buffer they arrived in.
func TestServerExtCookiesDoNotAliasInput(t *testing.T) {
	s := &ServerTCPLS{Version: Version, ConnID: 1, Cookies: [][]byte{{1, 2, 3, 4}}}
	enc := s.Encode()
	got, err := DecodeServerTCPLS(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), got.Cookies[0]...)
	for i := range enc {
		enc[i] = 0xff
	}
	if !bytes.Equal(got.Cookies[0], want) {
		t.Fatal("decoded cookie aliases the input buffer")
	}
}

// TestTruncatedControlCrashers replays hostile shapes aimed at the
// frame decoders' length arithmetic.
func TestTruncatedControlCrashers(t *testing.T) {
	cases := [][]byte{
		{byte(FrameAck), 0xff, 0xff},                // length past end
		{byte(FrameBPFCC), 0, 2, 0xff, 0xff},        // nameLen past body
		{byte(FrameBPFCC), 0, 6, 1, 'x', 0xff, 0xff, 0xff, 0xff}, // progLen overflow-ish
		{byte(FrameAddAddress), 0, 1, 9},            // unknown address family
		{byte(FrameAddAddress), 0, 4, 4, 1, 2, 3},   // truncated v4
		{byte(FramePing), 0, 2, 1, 2},               // wrong ping size
	}
	for i, b := range cases {
		if _, err := DecodeControl(b); err == nil {
			t.Fatalf("case %d decoded without error", i)
		}
	}
}
