package cc

import (
	"testing"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
)

func TestAIMDProgramBehavesLikeReno(t *testing.T) {
	e, err := New("ebpf:aimd")
	if err != nil {
		t.Fatal(err)
	}
	e.Init(1000)
	if e.CWnd() != InitialWindowSegments*1000 {
		t.Fatalf("IW = %d", e.CWnd())
	}
	// Slow start doubles.
	w0 := e.CWnd()
	for i := 0; i < 10; i++ {
		e.OnAck(1000, time.Millisecond, w0)
	}
	if e.CWnd() < 2*w0-1000 {
		t.Fatalf("ebpf slow start grew %d -> %d", w0, e.CWnd())
	}
	// Fast retransmit halves.
	e.OnFastRetransmit(40000)
	if e.Ssthresh() != 20000 || e.CWnd() != 20000 {
		t.Fatalf("after fastrtx: cwnd=%d ssthresh=%d", e.CWnd(), e.Ssthresh())
	}
	// RTO collapses to one MSS.
	e.OnRetransmitTimeout(20000)
	if e.CWnd() != 1000 {
		t.Fatalf("after RTO: cwnd=%d", e.CWnd())
	}
	// Recovery exit restores ssthresh.
	e.OnFastRetransmit(30000)
	e.OnRecoveryExit()
	if e.CWnd() != e.Ssthresh() {
		t.Fatalf("after exit: cwnd=%d ssthresh=%d", e.CWnd(), e.Ssthresh())
	}
	// Congestion avoidance is roughly linear.
	w := e.CWnd()
	for i := 0; i < w/1000; i++ {
		e.OnAck(1000, time.Millisecond, w)
	}
	growth := e.CWnd() - w
	if growth < 500 || growth > 2500 {
		t.Fatalf("ebpf CA growth = %d", growth)
	}
}

func TestAIMDBytecodeRoundTrip(t *testing.T) {
	// The program survives the wire: assemble -> bytes -> LoadEBPF.
	prog := ebpfvm.MustAssemble(AIMDProgram)
	ctrl, err := LoadEBPF("aimd-wire", prog.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "ebpf:aimd-wire" {
		t.Fatalf("name = %s", ctrl.Name())
	}
	ctrl.Init(1400)
	ctrl.OnFastRetransmit(28000)
	if ctrl.Ssthresh() != 14000 {
		t.Fatalf("wire-loaded controller ssthresh = %d", ctrl.Ssthresh())
	}
}

func TestLoadEBPFRejectsGarbage(t *testing.T) {
	if _, err := LoadEBPF("bad", []byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("garbage bytecode accepted")
	}
}

func TestFaultingPluginFreezesWindow(t *testing.T) {
	// A program that reads out of bounds: the adapter must keep the last
	// window rather than break the connection.
	prog := ebpfvm.MustAssemble("ldxdw r0, [r1+4096]\nexit")
	ctrl := NewEBPF("faulty", prog)
	ctrl.Init(1000)
	w := ctrl.CWnd()
	ctrl.OnAck(1000, time.Millisecond, w)
	if ctrl.CWnd() != w {
		t.Fatalf("faulting plugin changed window: %d", ctrl.CWnd())
	}
}

func TestEBPFMinimumWindows(t *testing.T) {
	// A hostile program writing 1-byte windows is clamped to >= 1 MSS.
	prog := ebpfvm.MustAssemble(`
		stdw [r1+56], 1
		stdw [r1+64], 1
		exit
	`)
	ctrl := NewEBPF("tiny", prog)
	ctrl.Init(1000)
	ctrl.OnAck(1000, time.Millisecond, 0)
	if ctrl.CWnd() < 1000 {
		t.Fatalf("cwnd below MSS: %d", ctrl.CWnd())
	}
	if ctrl.Ssthresh() < 2000 {
		t.Fatalf("ssthresh below 2*MSS: %d", ctrl.Ssthresh())
	}
}
