package cc

import (
	"math"
	"time"
)

// Cubic implements RFC 8312 CUBIC: the window grows as a cubic function
// of the time since the last reduction, anchored at the window size where
// the loss occurred (Wmax), with a TCP-friendly lower bound.
type Cubic struct {
	mss      int
	cwnd     int
	ssthresh int

	wMax       float64 // segments
	epochStart time.Time
	k          float64 // seconds until the plateau
	ackedBytes int     // bytes acked this virtual RTT for tcp-friendly est
	tcpCwnd    float64 // segments, Reno-equivalent estimate
	inRecovery bool
	hs         hystart
	now        func() time.Time // injectable for tests
}

// RFC 8312 constants: C in segments/s^3 and the multiplicative decrease.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC controller.
func NewCubic() *Cubic { return &Cubic{now: time.Now} }

// Name implements Controller.
func (c *Cubic) Name() string { return "cubic" }

// Init implements Controller.
func (c *Cubic) Init(mss int) {
	c.mss = mss
	c.cwnd = InitialWindowSegments * mss
	c.ssthresh = 1 << 30
}

// CWnd implements Controller.
func (c *Cubic) CWnd() int { return c.cwnd }

// Ssthresh implements Controller.
func (c *Cubic) Ssthresh() int { return c.ssthresh }

// OnAck implements Controller.
func (c *Cubic) OnAck(acked int, rtt time.Duration, inflight int) {
	if c.inRecovery {
		return
	}
	if c.cwnd < c.ssthresh {
		if c.hs.exitSlowStart(rtt) {
			c.ssthresh = c.cwnd
		} else {
			c.cwnd += min(acked, 2*c.mss)
			return
		}
	}
	if c.epochStart.IsZero() {
		c.epochStart = c.now()
		if c.wMax == 0 {
			c.wMax = float64(c.cwnd) / float64(c.mss)
		}
		c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		c.tcpCwnd = float64(c.cwnd) / float64(c.mss)
	}
	t := c.now().Sub(c.epochStart).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax // segments
	// TCP-friendly region (simplified Reno estimate).
	c.ackedBytes += acked
	if c.ackedBytes >= c.cwnd {
		c.tcpCwnd++
		c.ackedBytes = 0
	}
	if target < c.tcpCwnd {
		target = c.tcpCwnd
	}
	cur := float64(c.cwnd) / float64(c.mss)
	if target > cur {
		// Approach the cubic target over roughly one RTT.
		inc := (target - cur) / cur
		c.cwnd += int(inc * float64(c.mss))
		if c.cwnd < c.mss {
			c.cwnd = c.mss
		}
	} else {
		c.cwnd++ // minimal growth in the concave plateau
	}
}

// OnDupAck implements Controller: no window inflation, the transport
// does SACK pipe accounting.
func (c *Cubic) OnDupAck() {}

func (c *Cubic) reduce(inflight int) {
	c.wMax = float64(c.cwnd) / float64(c.mss)
	c.ssthresh = clampMin(int(float64(c.cwnd)*cubicBeta), 2*c.mss)
	c.epochStart = time.Time{}
}

// OnFastRetransmit implements Controller.
func (c *Cubic) OnFastRetransmit(inflight int) {
	c.reduce(inflight)
	c.cwnd = c.ssthresh
	c.inRecovery = true
}

// OnRecoveryExit implements Controller.
func (c *Cubic) OnRecoveryExit() {
	c.cwnd = c.ssthresh
	c.inRecovery = false
}

// OnRetransmitTimeout implements Controller.
func (c *Cubic) OnRetransmitTimeout(inflight int) {
	c.reduce(inflight)
	c.cwnd = c.mss
	c.inRecovery = false
}
