package cc

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/pluginized-protocols/gotcpls/internal/ebpfvm"
)

// The eBPF congestion-control ABI (§3(iii)/§4.3 of the TCPLS paper): the
// program is invoked once per congestion event with a context of
// little-endian u64 fields and writes its decisions into the out fields.
//
//	offset  field
//	  0     event (see EventXxx)
//	  8     mss
//	 16     cwnd (current, bytes)
//	 24     ssthresh (current, bytes)
//	 32     acked bytes (EventAck only)
//	 40     rtt in microseconds (0 if no sample)
//	 48     bytes in flight
//	 56     out: new cwnd   (0 = keep)
//	 64     out: new ssthresh (0 = keep)
const (
	ctxEvent       = 0
	ctxMSS         = 8
	ctxCWnd        = 16
	ctxSsthresh    = 24
	ctxAcked       = 32
	ctxRTTus       = 40
	ctxInflight    = 48
	ctxOutCWnd     = 56
	ctxOutSsthresh = 64
	ctxSize        = 72
)

// Congestion events delivered to eBPF controllers.
const (
	EventInit = iota
	EventAck
	EventDupAck
	EventFastRetransmit
	EventRTO
	EventRecoveryExit
)

// EBPF runs a congestion controller delivered as eBPF bytecode. It
// implements Controller; the transport cannot tell it from a native one.
type EBPF struct {
	name     string
	prog     *ebpfvm.Program
	vm       *ebpfvm.VM
	mss      int
	cwnd     int
	ssthresh int
	ctx      [ctxSize]byte
}

// NewEBPF wraps a verified program as a Controller. name is reported as
// "ebpf:<name>".
func NewEBPF(name string, prog *ebpfvm.Program) *EBPF {
	return &EBPF{name: "ebpf:" + name, prog: prog, vm: ebpfvm.New()}
}

// LoadEBPF verifies raw bytecode (as received over the TCPLS control
// channel) and wraps it as a Controller.
func LoadEBPF(name string, bytecode []byte) (*EBPF, error) {
	prog, err := ebpfvm.Unmarshal(bytecode)
	if err != nil {
		return nil, fmt.Errorf("cc: rejected eBPF controller %q: %w", name, err)
	}
	return NewEBPF(name, prog), nil
}

// Name implements Controller.
func (e *EBPF) Name() string { return e.name }

// Init implements Controller.
func (e *EBPF) Init(mss int) {
	e.mss = mss
	e.cwnd = InitialWindowSegments * mss
	e.ssthresh = 1 << 30
	e.run(EventInit, 0, 0, 0)
}

// CWnd implements Controller.
func (e *EBPF) CWnd() int { return e.cwnd }

// Ssthresh implements Controller.
func (e *EBPF) Ssthresh() int { return e.ssthresh }

// OnAck implements Controller.
func (e *EBPF) OnAck(acked int, rtt time.Duration, inflight int) {
	e.run(EventAck, acked, rtt, inflight)
}

// OnDupAck implements Controller.
func (e *EBPF) OnDupAck() { e.run(EventDupAck, 0, 0, 0) }

// OnFastRetransmit implements Controller.
func (e *EBPF) OnFastRetransmit(inflight int) { e.run(EventFastRetransmit, 0, 0, inflight) }

// OnRecoveryExit implements Controller.
func (e *EBPF) OnRecoveryExit() { e.run(EventRecoveryExit, 0, 0, 0) }

// OnRetransmitTimeout implements Controller.
func (e *EBPF) OnRetransmitTimeout(inflight int) { e.run(EventRTO, 0, 0, inflight) }

func (e *EBPF) run(event int, acked int, rtt time.Duration, inflight int) {
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(e.ctx[off:], v) }
	put(ctxEvent, uint64(event))
	put(ctxMSS, uint64(e.mss))
	put(ctxCWnd, uint64(e.cwnd))
	put(ctxSsthresh, uint64(e.ssthresh))
	put(ctxAcked, uint64(acked))
	put(ctxRTTus, uint64(rtt/time.Microsecond))
	put(ctxInflight, uint64(inflight))
	put(ctxOutCWnd, 0)
	put(ctxOutSsthresh, 0)
	if _, err := e.vm.Run(e.prog, e.ctx[:]); err != nil {
		// A faulting plugin freezes its last window rather than killing
		// the connection; the stack keeps working at the current rate.
		return
	}
	if v := binary.LittleEndian.Uint64(e.ctx[ctxOutCWnd:]); v != 0 {
		e.cwnd = clampMin(int(v), e.mss)
	}
	if v := binary.LittleEndian.Uint64(e.ctx[ctxOutSsthresh:]); v != 0 {
		e.ssthresh = clampMin(int(v), 2*e.mss)
	}
}

// AIMDProgram is a complete congestion controller written in eBPF
// assembly: slow start to ssthresh, additive increase of one MSS per
// window afterwards, multiplicative decrease of one half on fast
// retransmit, collapse to one MSS on RTO. It is the program the example
// server ships to clients to demonstrate pluginization.
const AIMDProgram = `
        ; r6 = event, r7 = mss, r8 = cwnd, r9 = ssthresh
        ldxdw r6, [r1+0]
        ldxdw r7, [r1+8]
        ldxdw r8, [r1+16]
        ldxdw r9, [r1+24]

        jeq   r6, 1, ack
        jeq   r6, 3, fastrtx
        jeq   r6, 4, rto
        jeq   r6, 5, recovery_exit
        ja    out              ; init/dupack: keep current windows

ack:
        jge   r8, r9, avoid    ; cwnd >= ssthresh -> congestion avoidance
        ; slow start: cwnd += min(acked, 2*mss)
        ldxdw r2, [r1+32]      ; acked
        mov   r3, r7
        lsh   r3, 1
        jle   r2, r3, ssgrow
        mov   r2, r3
ssgrow:
        add   r8, r2
        stxdw [r1+56], r8
        ja    out
avoid:
        ; cwnd += mss*mss/cwnd (at least 1)
        mov   r2, r7
        mul   r2, r7
        div   r2, r8
        jne   r2, 0, aigrow
        mov   r2, 1
aigrow:
        add   r8, r2
        stxdw [r1+56], r8
        ja    out

fastrtx:
        ; ssthresh = max(inflight/2, 2*mss); cwnd = ssthresh
        ldxdw r2, [r1+48]
        rsh   r2, 1
        mov   r3, r7
        lsh   r3, 1
        jge   r2, r3, cut
        mov   r2, r3
cut:
        stxdw [r1+64], r2
        stxdw [r1+56], r2
        ja    out

rto:
        ldxdw r2, [r1+48]
        rsh   r2, 1
        mov   r3, r7
        lsh   r3, 1
        jge   r2, r3, cut2
        mov   r2, r3
cut2:
        stxdw [r1+64], r2
        stxdw [r1+56], r7      ; cwnd = 1 MSS
        ja    out

recovery_exit:
        stxdw [r1+56], r9      ; cwnd = ssthresh
        ja    out

out:
        mov   r0, 0
        exit
`

// RegisterAIMD compiles AIMDProgram and registers it as "ebpf:aimd".
func RegisterAIMD() {
	prog := ebpfvm.MustAssemble(AIMDProgram)
	Register("ebpf:aimd", func() Controller { return NewEBPF("aimd", prog) })
}

func init() { RegisterAIMD() }
