package cc

import "time"

// NewReno is the classic RFC 5681/6582 loss-based controller: slow start,
// congestion avoidance, fast retransmit/fast recovery with window
// inflation, and multiplicative decrease of one half.
type NewReno struct {
	mss        int
	cwnd       int
	ssthresh   int
	inRecovery bool
	hs         hystart
}

// InitialWindowSegments is the RFC 6928 initial window.
const InitialWindowSegments = 10

// NewNewReno returns a NewReno controller.
func NewNewReno() *NewReno { return &NewReno{} }

// Name implements Controller.
func (r *NewReno) Name() string { return "newreno" }

// Init implements Controller.
func (r *NewReno) Init(mss int) {
	r.mss = mss
	r.cwnd = InitialWindowSegments * mss
	r.ssthresh = 1 << 30 // "infinite": slow start until first loss
}

// CWnd implements Controller.
func (r *NewReno) CWnd() int { return r.cwnd }

// Ssthresh implements Controller.
func (r *NewReno) Ssthresh() int { return r.ssthresh }

// OnAck implements Controller.
func (r *NewReno) OnAck(acked int, rtt time.Duration, inflight int) {
	if r.inRecovery {
		// Partial acks during recovery keep the window deflated; growth
		// resumes after OnRecoveryExit.
		return
	}
	if r.cwnd < r.ssthresh {
		// HyStart-style delay increase detection: when queueing delay
		// builds, leave slow start before the queue overflows.
		if r.hs.exitSlowStart(rtt) {
			r.ssthresh = r.cwnd
		} else {
			// Slow start: one MSS per MSS acked (byte counting, RFC 3465).
			r.cwnd += min(acked, 2*r.mss)
			return
		}
	}
	// Congestion avoidance: ~one MSS per RTT.
	inc := r.mss * r.mss / r.cwnd
	if inc == 0 {
		inc = 1
	}
	r.cwnd += inc
}

// OnDupAck implements Controller. The transport uses SACK-based pipe
// accounting instead of classic window inflation, so dupacks do not
// change the window.
func (r *NewReno) OnDupAck() {}

// OnFastRetransmit implements Controller. inflight should be the
// SACK-adjusted flight size.
func (r *NewReno) OnFastRetransmit(inflight int) {
	r.ssthresh = clampMin(inflight/2, 2*r.mss)
	r.cwnd = r.ssthresh
	r.inRecovery = true
}

// OnRecoveryExit implements Controller.
func (r *NewReno) OnRecoveryExit() {
	r.cwnd = r.ssthresh
	r.inRecovery = false
}

// OnRetransmitTimeout implements Controller.
func (r *NewReno) OnRetransmitTimeout(inflight int) {
	r.ssthresh = clampMin(inflight/2, 2*r.mss)
	r.cwnd = r.mss
	r.inRecovery = false
}
