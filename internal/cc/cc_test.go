package cc

import (
	"testing"
	"time"
)

func TestRegistry(t *testing.T) {
	for _, name := range []string{"newreno", "cubic"} {
		c, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("Name() = %s", c.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
	found := false
	for _, n := range Names() {
		if n == "cubic" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing cubic")
	}
	// Registration shadows.
	Register("newreno2", func() Controller { return NewNewReno() })
	if _, err := New("newreno2"); err != nil {
		t.Fatal(err)
	}
}

func TestNewRenoSlowStartDoubles(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	w0 := r.CWnd()
	if w0 != InitialWindowSegments*1000 {
		t.Fatalf("IW = %d", w0)
	}
	// One RTT of acks for the whole window roughly doubles it.
	for i := 0; i < 10; i++ {
		r.OnAck(1000, 10*time.Millisecond, w0)
	}
	if r.CWnd() < 2*w0-1000 {
		t.Fatalf("slow start grew %d -> %d", w0, r.CWnd())
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	r.OnRetransmitTimeout(20000) // ssthresh = 10000, cwnd = 1000
	if r.CWnd() != 1000 || r.Ssthresh() != 10000 {
		t.Fatalf("after RTO: cwnd=%d ssthresh=%d", r.CWnd(), r.Ssthresh())
	}
	// Grow back into CA.
	for r.CWnd() < r.Ssthresh() {
		r.OnAck(1000, 10*time.Millisecond, r.CWnd())
	}
	w := r.CWnd()
	// One full window of acks in CA adds about one MSS.
	acks := w / 1000
	for i := 0; i < acks; i++ {
		r.OnAck(1000, 10*time.Millisecond, w)
	}
	growth := r.CWnd() - w
	if growth < 500 || growth > 2500 {
		t.Fatalf("CA growth over one RTT = %d bytes", growth)
	}
}

func TestNewRenoFastRecovery(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	r.OnFastRetransmit(40000)
	if r.Ssthresh() != 20000 {
		t.Fatalf("ssthresh = %d", r.Ssthresh())
	}
	if r.CWnd() != 20000 {
		t.Fatalf("cwnd = %d", r.CWnd())
	}
	// Acks during recovery do not grow the window.
	w := r.CWnd()
	r.OnAck(1000, 10*time.Millisecond, 30000)
	if r.CWnd() != w {
		t.Fatal("window grew during recovery")
	}
	r.OnRecoveryExit()
	if r.CWnd() != r.Ssthresh() {
		t.Fatalf("post-recovery cwnd = %d", r.CWnd())
	}
}

func TestNewRenoFloorsAtTwoMSS(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	r.OnFastRetransmit(1000) // tiny flight
	if r.Ssthresh() < 2000 {
		t.Fatalf("ssthresh below 2*MSS: %d", r.Ssthresh())
	}
}

func TestHystartExitsOnDelayIncrease(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	base := 20 * time.Millisecond
	// Establish the min RTT.
	for i := 0; i < 5; i++ {
		r.OnAck(1000, base, 10000)
	}
	before := r.CWnd()
	// Queueing delay builds: consecutive inflated samples end slow start.
	for i := 0; i < hystartSamples+1; i++ {
		r.OnAck(1000, base*2, 10000)
	}
	if r.Ssthresh() > before+(hystartSamples+2)*2000 {
		t.Fatalf("hystart did not cap ssthresh: %d", r.Ssthresh())
	}
	if r.CWnd() >= 1<<29 {
		t.Fatal("still in unbounded slow start")
	}
}

func TestHystartIgnoresJitterSpikes(t *testing.T) {
	r := NewNewReno()
	r.Init(1000)
	base := 20 * time.Millisecond
	r.OnAck(1000, base, 10000)
	w := r.CWnd()
	// Alternating spikes never trip the consecutive-sample filter.
	for i := 0; i < 20; i++ {
		rtt := base
		if i%2 == 0 {
			rtt = base * 3
		}
		r.OnAck(1000, rtt, 10000)
	}
	if r.Ssthresh() != 1<<30 {
		t.Fatal("jitter tripped hystart")
	}
	if r.CWnd() <= w {
		t.Fatal("slow start stopped growing")
	}
}

func TestCubicReductionAndRegrowth(t *testing.T) {
	c := NewCubic()
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	c.Init(1000)
	// Force out of slow start.
	c.OnFastRetransmit(100000)
	c.OnRecoveryExit()
	w := c.CWnd()
	if w >= 100000 {
		t.Fatalf("no reduction: %d", w)
	}
	// Growth resumes as virtual time advances.
	for i := 0; i < 200; i++ {
		now = now.Add(10 * time.Millisecond)
		c.OnAck(1000, 10*time.Millisecond, w)
	}
	if c.CWnd() <= w {
		t.Fatalf("cubic did not regrow: %d -> %d", w, c.CWnd())
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	c := NewCubic()
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	c.Init(1000)
	// Grow to ~100 KB in slow start (constant RTT keeps hystart quiet).
	for c.CWnd() < 100000 {
		c.OnAck(1000, 10*time.Millisecond, c.CWnd())
	}
	wMax := c.CWnd()
	c.OnFastRetransmit(wMax)
	c.OnRecoveryExit()
	if c.CWnd() >= wMax {
		t.Fatalf("no reduction: %d", c.CWnd())
	}
	// Regrow: one ack per segment in flight per 10 ms round; the cubic
	// curve must carry the window back to (and past) wMax once the time
	// since the reduction passes K.
	for i := 0; i < 1200 && c.CWnd() < wMax; i++ {
		for j := 0; j < c.CWnd()/1000+1; j++ {
			c.OnAck(1000, 10*time.Millisecond, c.CWnd())
		}
		now = now.Add(10 * time.Millisecond)
	}
	if c.CWnd() < wMax {
		t.Fatalf("cubic never regained wMax=%d: %d", wMax, c.CWnd())
	}
}

func TestCubicTimeoutCollapses(t *testing.T) {
	c := NewCubic()
	c.Init(1000)
	c.OnRetransmitTimeout(50000)
	if c.CWnd() != 1000 {
		t.Fatalf("cwnd after RTO = %d", c.CWnd())
	}
}

func TestDupAckNoInflation(t *testing.T) {
	for _, name := range []string{"newreno", "cubic"} {
		c, _ := New(name)
		c.Init(1000)
		c.OnFastRetransmit(50000)
		w := c.CWnd()
		for i := 0; i < 10; i++ {
			c.OnDupAck()
		}
		if c.CWnd() != w {
			t.Fatalf("%s inflated on dupacks", name)
		}
	}
}
