// Package cc implements the congestion-control algorithms used by the
// userspace TCP stack in internal/tcpnet: NewReno and CUBIC natively, plus
// an adapter that runs a controller delivered as eBPF bytecode — the
// "pluginized TCPLS" mechanism of §3(iii)/§4.3 of the paper, where the
// server ships a congestion-control upgrade to the client over the secure
// channel.
package cc

import (
	"fmt"
	"time"
)

// Controller is the congestion-control contract. All byte counts are in
// bytes; implementations convert to segments with the MSS given to Init.
// Controllers are driven under the owning connection's lock and must not
// block.
type Controller interface {
	// Name identifies the algorithm ("newreno", "cubic", "ebpf:<name>").
	Name() string
	// Init is called once with the connection's MSS before any event.
	Init(mss int)
	// CWnd returns the current congestion window in bytes.
	CWnd() int
	// Ssthresh returns the slow-start threshold in bytes.
	Ssthresh() int
	// OnAck reports acked new bytes, the latest RTT sample (0 if none),
	// and the bytes left in flight after the ack.
	OnAck(acked int, rtt time.Duration, inflight int)
	// OnDupAck reports one duplicate acknowledgment.
	OnDupAck()
	// OnFastRetransmit signals entry into fast recovery (3rd dupack).
	OnFastRetransmit(inflight int)
	// OnRecoveryExit signals the first new ack after fast recovery.
	OnRecoveryExit()
	// OnRetransmitTimeout signals an RTO: collapse to one segment.
	OnRetransmitTimeout(inflight int)
}

// Factory builds a fresh controller per connection.
type Factory func() Controller

// registry of named factories lets the stack (and the eBPF plugin layer)
// select algorithms by name.
var registry = map[string]Factory{}

// Register installs a named controller factory. Later registrations with
// the same name replace earlier ones (plugins may shadow built-ins).
func Register(name string, f Factory) { registry[name] = f }

// New returns a fresh controller for name, or an error if unknown.
func New(name string) (Controller, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown congestion controller %q", name)
	}
	return f(), nil
}

// Names returns the registered controller names (order unspecified).
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	return out
}

func init() {
	Register("newreno", func() Controller { return NewNewReno() })
	Register("cubic", func() Controller { return NewCubic() })
}

// hystart implements a HyStart-like delay-increase detector shared by the
// built-in controllers: it tracks the minimum RTT seen and reports true
// after several consecutive samples show meaningful queueing delay, at
// which point the caller should set ssthresh = cwnd and move to
// congestion avoidance before the bottleneck queue overflows. Requiring
// consecutive samples filters the scheduling jitter that emulated (time-
// scaled) networks add to individual RTT measurements.
type hystart struct {
	minRTT time.Duration
	above  int
}

// hystartSamples is how many consecutive inflated RTTs trigger the exit.
const hystartSamples = 3

func (h *hystart) exitSlowStart(rtt time.Duration) bool {
	if rtt <= 0 {
		return false
	}
	if h.minRTT == 0 || rtt < h.minRTT {
		h.minRTT = rtt
	}
	thresh := h.minRTT / 4
	if thresh < 8*time.Millisecond {
		thresh = 8 * time.Millisecond
	}
	if rtt >= h.minRTT+thresh {
		h.above++
	} else {
		h.above = 0
	}
	return h.above >= hystartSamples
}

// clampMin returns v, but at least lo.
func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}
