// Package ring provides a bounded multi-producer single-consumer ring
// buffer with a coalescing doorbell — the replacement for the
// chan-per-segment boundary between tcpnet and netsim.
//
// A Go channel send costs a lock acquisition, a G handoff and often a
// scheduler wakeup *per element*. The ring splits those costs: elements
// land in the buffer with two atomic operations (Vyukov bounded-queue
// protocol), and the wakeup is a separate, coalescing doorbell — a
// capacity-1 channel that producers ring with a non-blocking send. A
// burst of N pushes wakes the consumer once, and the consumer drains
// the whole burst with one PopBatch, which is exactly the shape
// Host.SendBatch wants on the other side.
//
// Correctness of the sleep/wake protocol: a producer completes its push
// (the cell's sequence store, with release semantics) strictly before
// ringing the bell. The bell has capacity 1, so if the consumer is
// between "drained empty" and "sleep on bell", the producer's ring
// leaves a token behind and the consumer's receive returns immediately.
// Lost-wakeup is therefore impossible; spurious wakeups (token left by
// a push that was already drained) are benign — PopBatch returns 0 and
// the consumer sleeps again.
//
// TryPush never blocks: a full ring returns false and the caller
// chooses the backpressure policy (spin, park, or drop per the link's
// queue model). This keeps the ring free of hidden scheduling and makes
// the full-queue behaviour testable.
package ring

import (
	"sync/atomic"
)

type cell[T any] struct {
	seq atomic.Int64
	val T
}

// Ring is a bounded MPSC queue. Any goroutine may TryPush; exactly one
// goroutine may call PopBatch/Pop (the consumer owns tail).
type Ring[T any] struct {
	mask  int64
	cells []cell[T]

	// Producer and consumer cursors live on separate cache lines from
	// the cells; head is contended across producers, tail is
	// consumer-private but read here for Len.
	_    [64]byte
	head atomic.Int64 // next position to claim (producers)
	_    [64]byte
	tail atomic.Int64 // next position to drain (consumer)
	_    [64]byte

	bell chan struct{}

	// Stats for tests and telemetry (atomic, written on slow paths or
	// cheap enough not to matter).
	pushes atomic.Int64
	pops   atomic.Int64
	fulls  atomic.Int64 // TryPush rejections
	rings  atomic.Int64 // bell tokens actually deposited (coalesced misses excluded)
}

// New creates a ring with at least the requested capacity, rounded up
// to a power of two (minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{
		mask:  int64(n - 1),
		cells: make([]cell[T], n),
		bell:  make(chan struct{}, 1),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(int64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.cells) }

// Len returns a moment-in-time element count (approximate under
// concurrent producers).
func (r *Ring[T]) Len() int {
	n := r.head.Load() - r.tail.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// TryPush enqueues v and rings the doorbell. It returns false — without
// blocking or ringing — when the ring is full.
func (r *Ring[T]) TryPush(v T) bool {
	if !r.tryPushQuiet(v) {
		return false
	}
	r.Ring()
	return true
}

// tryPushQuiet enqueues without ringing (PushBatch rings once at the
// end of a burst).
func (r *Ring[T]) tryPushQuiet(v T) bool {
	var c *cell[T]
	pos := r.head.Load()
	for {
		c = &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch dif := seq - pos; {
		case dif == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				goto claimed
			}
			pos = r.head.Load()
		case dif < 0:
			r.fulls.Add(1)
			return false
		default:
			pos = r.head.Load()
		}
	}
claimed:
	c.val = v
	c.seq.Store(pos + 1)
	r.pushes.Add(1)
	return true
}

// PushBatch enqueues as many elements of vs as fit, rings once if any
// landed, and returns the number enqueued. The caller owns the
// remainder (backpressure policy is theirs).
func (r *Ring[T]) PushBatch(vs []T) int {
	n := 0
	for _, v := range vs {
		if !r.tryPushQuiet(v) {
			break
		}
		n++
	}
	if n > 0 {
		r.Ring()
	}
	return n
}

// Ring deposits a wakeup token if none is pending. Safe from any
// goroutine; never blocks.
func (r *Ring[T]) Ring() {
	select {
	case r.bell <- struct{}{}:
		r.rings.Add(1)
	default:
	}
}

// Bell returns the doorbell channel for the consumer to select on. A
// receipt means "the ring may be non-empty"; drain with PopBatch until
// it returns 0, then sleep on the bell again.
func (r *Ring[T]) Bell() <-chan struct{} { return r.bell }

// PopBatch drains up to len(dst) elements into dst and returns the
// count. Single consumer only.
func (r *Ring[T]) PopBatch(dst []T) int {
	var zero T
	pos := r.tail.Load()
	n := 0
	for n < len(dst) {
		c := &r.cells[pos&r.mask]
		if c.seq.Load() != pos+1 {
			break // next cell not yet published
		}
		dst[n] = c.val
		c.val = zero // drop references for GC / pool hygiene
		c.seq.Store(pos + r.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		r.tail.Store(pos)
		r.pops.Add(int64(n))
	}
	return n
}

// Pop removes one element. Single consumer only.
func (r *Ring[T]) Pop() (T, bool) {
	var buf [1]T
	if r.PopBatch(buf[:]) == 1 {
		return buf[0], true
	}
	var zero T
	return zero, false
}

// Stats is a snapshot of the ring's counters.
type Stats struct {
	Pushes, Pops, FullRejects, BellRings int64
}

// Stats snapshots the counters.
func (r *Ring[T]) Stats() Stats {
	return Stats{
		Pushes:      r.pushes.Load(),
		Pops:        r.pops.Load(),
		FullRejects: r.fulls.Load(),
		BellRings:   r.rings.Load(),
	}
}
