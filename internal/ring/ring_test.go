package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRingFIFO checks single-producer ordering and batch drains.
func TestRingFIFO(t *testing.T) {
	r := New[int](8)
	if r.Cap() != 8 {
		t.Fatalf("cap=%d want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	buf := make([]int, 16)
	n := r.PopBatch(buf)
	if n != 8 {
		t.Fatalf("drained %d want 8", n)
	}
	for i := 0; i < 8; i++ {
		if buf[i] != i {
			t.Fatalf("order broken: buf=%v", buf[:n])
		}
	}
}

// TestRingFullBackpressure pins the full-queue contract: TryPush on a
// full ring fails without blocking, succeeds again after one drain, and
// the rejection is counted.
func TestRingFullBackpressure(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("fill push %d failed", i)
		}
	}
	done := make(chan bool, 1)
	go func() { done <- r.TryPush(99) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("TryPush succeeded on full ring")
		}
	case <-time.After(time.Second):
		t.Fatal("TryPush blocked on full ring")
	}
	if s := r.Stats(); s.FullRejects != 1 {
		t.Fatalf("FullRejects=%d want 1", s.FullRejects)
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("pop=(%d,%v) want (0,true)", v, ok)
	}
	if !r.TryPush(99) {
		t.Fatal("push after drain failed")
	}
}

// TestRingDoorbellCoalescing asserts the doorbell contract: a burst of
// pushes with no consumer deposits exactly one token (wakeups coalesce)
// yet the whole burst drains, and a fresh push after the drain rings
// again (no lost wakeup).
func TestRingDoorbellCoalescing(t *testing.T) {
	r := New[int](2048)
	for i := 0; i < 1000; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if len(r.bell) != 1 {
		t.Fatalf("bell tokens=%d want exactly 1 after a 1000-push burst", len(r.bell))
	}
	if s := r.Stats(); s.BellRings != 1 {
		t.Fatalf("BellRings=%d want 1 (coalesced)", s.BellRings)
	}

	<-r.Bell()
	buf := make([]int, 256)
	total := 0
	for {
		n := r.PopBatch(buf)
		if n == 0 {
			break
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("drained %d want 1000", total)
	}

	// The bell must ring again for new work after a full drain.
	r.TryPush(7)
	select {
	case <-r.Bell():
	default:
		t.Fatal("no bell token after post-drain push (lost wakeup)")
	}
}

// TestRingPushBatch covers the quiet-batch producer: one bell token per
// batch, partial acceptance when the ring fills mid-batch.
func TestRingPushBatch(t *testing.T) {
	r := New[int](8)
	vs := make([]int, 12)
	for i := range vs {
		vs[i] = i
	}
	n := r.PushBatch(vs)
	if n != 8 {
		t.Fatalf("accepted %d want 8", n)
	}
	if s := r.Stats(); s.BellRings != 1 {
		t.Fatalf("BellRings=%d want 1 for one batch", s.BellRings)
	}
	buf := make([]int, 16)
	if got := r.PopBatch(buf); got != 8 {
		t.Fatalf("drained %d want 8", got)
	}
	for i := 0; i < 8; i++ {
		if buf[i] != i {
			t.Fatalf("batch order broken: %v", buf[:8])
		}
	}
	if r.PushBatch(nil) != 0 {
		t.Fatal("empty batch accepted elements")
	}
}

// TestRingMPSCStress is the -race gauntlet: many producers with a
// retry-on-full backpressure loop, one consumer driven solely by the
// doorbell, every element delivered exactly once, and wakeups far fewer
// than pushes (the coalescing payoff).
func TestRingMPSCStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 5000
	)
	r := New[int64](256)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := int64(p)*perProd + int64(i)
				for !r.TryPush(v) {
					runtime.Gosched() // backpressure: spin-yield until space
				}
			}
		}(p)
	}

	seen := make([]bool, producers*perProd)
	var wakeups int
	buf := make([]int64, 512)
	received := 0
	deadline := time.After(30 * time.Second)
	for received < producers*perProd {
		select {
		case <-r.Bell():
			wakeups++
			for {
				n := r.PopBatch(buf)
				if n == 0 {
					break
				}
				for _, v := range buf[:n] {
					if seen[v] {
						t.Fatalf("element %d delivered twice", v)
					}
					seen[v] = true
				}
				received += n
			}
		case <-deadline:
			t.Fatalf("stalled: received %d/%d (lost wakeup?)", received, producers*perProd)
		}
	}
	wg.Wait()

	for v, ok := range seen {
		if !ok {
			t.Fatalf("element %d never delivered", v)
		}
	}
	if n := r.PopBatch(buf); n != 0 {
		t.Fatalf("ring not empty after drain: %d extra", n)
	}
	s := r.Stats()
	if s.Pushes != int64(producers*perProd) || s.Pops != s.Pushes {
		t.Fatalf("counter mismatch: %+v", s)
	}
	t.Logf("pushes=%d wakeups=%d (%.1f pushes/wakeup) fullRejects=%d",
		s.Pushes, wakeups, float64(s.Pushes)/float64(wakeups), s.FullRejects)
}

// TestRingConsumerSleepRace hammers the exact drain-then-sleep window:
// the consumer repeatedly drains to empty and sleeps on the bell while
// a producer pushes one element at a time. Any lost wakeup deadlocks
// and trips the watchdog.
func TestRingConsumerSleepRace(t *testing.T) {
	r := New[int](4)
	const rounds = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]int, 4)
		got := 0
		for got < rounds {
			<-r.Bell()
			for {
				n := r.PopBatch(buf)
				if n == 0 {
					break
				}
				got += n
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		for !r.TryPush(i) {
			runtime.Gosched()
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer stalled: lost wakeup in drain/sleep window")
	}
}

// BenchmarkRingPush measures the producer fast path.
func BenchmarkRingPush(b *testing.B) {
	r := New[int](1 << 16)
	buf := make([]int, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.TryPush(i) {
			for r.PopBatch(buf) != 0 {
			}
			select {
			case <-r.Bell():
			default:
			}
		}
	}
}
